#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "graph/serialize.h"
#include "util/random.h"

namespace ppsm {

namespace {

/// A weighted graph at one level of the multilevel hierarchy. Vertex
/// weights are the number of original vertices contracted into each node;
/// edge weights the number of original edges crossing between them.
struct LevelGraph {
  std::vector<int64_t> vertex_weight;
  std::vector<std::vector<std::pair<uint32_t, int64_t>>> adj;

  size_t NumVertices() const { return vertex_weight.size(); }
  int64_t TotalWeight() const {
    return std::accumulate(vertex_weight.begin(), vertex_weight.end(),
                           int64_t{0});
  }
};

LevelGraph FromAttributedGraph(const AttributedGraph& graph) {
  LevelGraph level;
  level.vertex_weight.assign(graph.NumVertices(), 1);
  level.adj.resize(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    level.adj[v].reserve(graph.Degree(v));
    for (const VertexId u : graph.Neighbors(v)) {
      level.adj[v].emplace_back(u, 1);
    }
  }
  return level;
}

/// Heavy-edge matching: each vertex pairs with its heaviest unmatched
/// neighbor. Returns fine->coarse mapping and the number of coarse
/// vertices.
uint32_t HeavyEdgeMatching(const LevelGraph& level, Rng& rng,
                           std::vector<uint32_t>* fine_to_coarse) {
  const size_t n = level.NumVertices();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  constexpr uint32_t kUnmatched = UINT32_MAX;
  std::vector<uint32_t> match(n, kUnmatched);
  fine_to_coarse->assign(n, kUnmatched);
  uint32_t next_coarse = 0;
  for (const uint32_t u : order) {
    if (match[u] != kUnmatched) continue;
    uint32_t best = kUnmatched;
    int64_t best_weight = -1;
    for (const auto& [v, w] : level.adj[u]) {
      if (match[v] == kUnmatched && v != u && w > best_weight) {
        best = v;
        best_weight = w;
      }
    }
    if (best != kUnmatched) {
      match[u] = best;
      match[best] = u;
      (*fine_to_coarse)[u] = next_coarse;
      (*fine_to_coarse)[best] = next_coarse;
    } else {
      match[u] = u;
      (*fine_to_coarse)[u] = next_coarse;
    }
    ++next_coarse;
  }
  return next_coarse;
}

LevelGraph Contract(const LevelGraph& level,
                    const std::vector<uint32_t>& fine_to_coarse,
                    uint32_t num_coarse) {
  LevelGraph coarse;
  coarse.vertex_weight.assign(num_coarse, 0);
  coarse.adj.resize(num_coarse);
  for (size_t v = 0; v < level.NumVertices(); ++v) {
    coarse.vertex_weight[fine_to_coarse[v]] += level.vertex_weight[v];
  }
  std::unordered_map<uint32_t, int64_t> accumulator;
  // Group fine vertices by coarse id for cache-friendly accumulation.
  std::vector<std::vector<uint32_t>> members(num_coarse);
  for (size_t v = 0; v < level.NumVertices(); ++v) {
    members[fine_to_coarse[v]].push_back(static_cast<uint32_t>(v));
  }
  for (uint32_t c = 0; c < num_coarse; ++c) {
    accumulator.clear();
    for (const uint32_t v : members[c]) {
      for (const auto& [u, w] : level.adj[v]) {
        const uint32_t cu = fine_to_coarse[u];
        if (cu != c) accumulator[cu] += w;
      }
    }
    coarse.adj[c].assign(accumulator.begin(), accumulator.end());
  }
  return coarse;
}

/// Greedy region growing: BFS-grow each part up to the target weight.
std::vector<uint32_t> InitialPartition(const LevelGraph& level, uint32_t k,
                                       int64_t cap, Rng& rng) {
  const size_t n = level.NumVertices();
  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> part(n, kUnassigned);
  std::vector<int64_t> part_weight(k, 0);
  const int64_t target =
      (level.TotalWeight() + static_cast<int64_t>(k) - 1) /
      static_cast<int64_t>(k);

  std::vector<uint32_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0);
  rng.Shuffle(seeds);
  size_t seed_cursor = 0;

  for (uint32_t p = 0; p + 1 < k; ++p) {
    // Find an unassigned seed.
    while (seed_cursor < n && part[seeds[seed_cursor]] != kUnassigned) {
      ++seed_cursor;
    }
    if (seed_cursor >= n) break;
    std::deque<uint32_t> frontier{seeds[seed_cursor]};
    while (!frontier.empty() && part_weight[p] < target) {
      const uint32_t v = frontier.front();
      frontier.pop_front();
      if (part[v] != kUnassigned) continue;
      if (part_weight[p] + level.vertex_weight[v] > cap) continue;
      part[v] = p;
      part_weight[p] += level.vertex_weight[v];
      for (const auto& [u, w] : level.adj[v]) {
        (void)w;
        if (part[u] == kUnassigned) frontier.push_back(u);
      }
    }
  }
  // Everything left goes to the lightest part that still has room under
  // the cap; only when no part can take the vertex does it spill to the
  // overall lightest (EnforceHardCap repairs the overflow at the finest
  // level).
  for (size_t v = 0; v < n; ++v) {
    if (part[v] != kUnassigned) continue;
    uint32_t best = kUnassigned;
    for (uint32_t p = 0; p < k; ++p) {
      if (part_weight[p] + level.vertex_weight[v] > cap) continue;
      if (best == kUnassigned || part_weight[p] < part_weight[best]) best = p;
    }
    if (best == kUnassigned) {
      best = 0;
      for (uint32_t p = 1; p < k; ++p) {
        if (part_weight[p] < part_weight[best]) best = p;
      }
    }
    part[v] = best;
    part_weight[best] += level.vertex_weight[v];
  }
  return part;
}

/// One FM-style boundary sweep. Moves a vertex to the neighbor part with
/// the highest positive gain (cut-weight reduction) subject to the cap;
/// zero-gain moves are taken only when they improve balance. Returns the
/// number of moves made.
size_t RefinePass(const LevelGraph& level, uint32_t k, int64_t cap,
                  std::vector<uint32_t>* part,
                  std::vector<int64_t>* part_weight, Rng& rng) {
  const size_t n = level.NumVertices();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<int64_t> link(k, 0);
  size_t moves = 0;
  for (const uint32_t v : order) {
    const uint32_t from = (*part)[v];
    bool boundary = false;
    std::fill(link.begin(), link.end(), 0);
    for (const auto& [u, w] : level.adj[v]) {
      link[(*part)[u]] += w;
      if ((*part)[u] != from) boundary = true;
    }
    if (!boundary) continue;
    // Best feasible destination by (gain, then lighter target weight).
    uint32_t best = from;
    int64_t best_gain = INT64_MIN;
    for (uint32_t p = 0; p < k; ++p) {
      if (p == from) continue;
      if ((*part_weight)[p] + level.vertex_weight[v] > cap) continue;
      const int64_t gain = link[p] - link[from];
      if (gain > best_gain ||
          (gain == best_gain && best != from &&
           (*part_weight)[p] < (*part_weight)[best])) {
        best = p;
        best_gain = gain;
      }
    }
    // Positive-gain moves always; zero-gain moves only if they improve
    // balance (strictly lighter destination).
    const bool take =
        best != from &&
        (best_gain > 0 ||
         (best_gain == 0 && (*part_weight)[best] + level.vertex_weight[v] <
                                (*part_weight)[from]));
    if (take) {
      (*part)[v] = best;
      (*part_weight)[from] -= level.vertex_weight[v];
      (*part_weight)[best] += level.vertex_weight[v];
      ++moves;
    }
  }
  return moves;
}

std::vector<int64_t> ComputePartWeights(const LevelGraph& level,
                                        const std::vector<uint32_t>& part,
                                        uint32_t k) {
  std::vector<int64_t> weight(k, 0);
  for (size_t v = 0; v < level.NumVertices(); ++v) {
    weight[part[v]] += level.vertex_weight[v];
  }
  return weight;
}

/// Enforces the hard per-part cap at the finest level (unit weights) by
/// evicting minimum-cut-damage vertices from over-full parts into
/// under-full ones. Fails with Internal — not an assert, which would
/// compile out under NDEBUG and leave an unbounded loop writing through a
/// UINT32_MAX index — if an over-full part has no feasible eviction left.
Status EnforceHardCap(const LevelGraph& level, uint32_t k, int64_t cap,
                      std::vector<uint32_t>* part) {
  std::vector<int64_t> weight = ComputePartWeights(level, *part, k);
  std::vector<int64_t> link(k, 0);
  // Best feasible move for `v` out of `from`: highest cut gain, target
  // ties broken toward the lower part id. Returns false when no other
  // part has room.
  const auto best_move = [&](uint32_t v, uint32_t from, int64_t* gain,
                             uint32_t* target) {
    std::fill(link.begin(), link.end(), 0);
    for (const auto& [u, w] : level.adj[v]) link[(*part)[u]] += w;
    *gain = INT64_MIN;
    *target = UINT32_MAX;
    for (uint32_t p = 0; p < k; ++p) {
      if (p == from || weight[p] >= cap) continue;
      const int64_t g = link[p] - link[from];
      if (g > *gain) {
        *gain = g;
        *target = p;
      }
    }
    return *target != UINT32_MAX;
  };

  for (uint32_t from = 0; from < k; ++from) {
    if (weight[from] <= cap) continue;
    // Lazy-revalidation max-heap over the part's members, keyed by the
    // best feasible gain at push time. A popped entry is recomputed; a
    // stale key (an earlier eviction changed the vertex's links or filled
    // its target) is re-pushed corrected instead of applied, so every
    // applied move uses current weights. During one part's drain no part
    // other than `from` ever loses weight, so a vertex with no feasible
    // target stays infeasible and is dropped rather than re-pushed.
    std::priority_queue<std::pair<int64_t, uint32_t>> heap;
    for (size_t v = 0; v < level.NumVertices(); ++v) {
      if ((*part)[v] != from) continue;
      int64_t gain;
      uint32_t target;
      if (best_move(static_cast<uint32_t>(v), from, &gain, &target)) {
        heap.emplace(gain, static_cast<uint32_t>(v));
      }
    }
    while (weight[from] > cap) {
      if (heap.empty()) {
        return Status::Internal(
            "partitioner: hard cap infeasible — no part can absorb the "
            "overflow of part " +
            std::to_string(from));
      }
      const auto [pushed_gain, v] = heap.top();
      heap.pop();
      if ((*part)[v] != from) continue;  // Duplicate of an applied move.
      int64_t gain;
      uint32_t target;
      if (!best_move(v, from, &gain, &target)) continue;
      if (gain != pushed_gain) {
        heap.emplace(gain, v);
        continue;
      }
      (*part)[v] = target;
      weight[from] -= level.vertex_weight[v];
      weight[target] += level.vertex_weight[v];
      // Refresh the keys of in-part neighbors — their links to `from` and
      // `target` just changed — so the greedy stays close to exact-best.
      for (const auto& [u, w] : level.adj[v]) {
        (void)w;
        if ((*part)[u] != from) continue;
        int64_t ugain;
        uint32_t utarget;
        if (best_move(u, from, &ugain, &utarget)) heap.emplace(ugain, u);
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<Partitioning> PartitionGraph(const AttributedGraph& graph,
                                    const PartitionOptions& options) {
  const size_t n = graph.NumVertices();
  const uint32_t k = options.num_parts;
  if (k == 0) return Status::InvalidArgument("num_parts must be >= 1");
  if (n == 0) return Status::InvalidArgument("cannot partition empty graph");
  if (k > n) {
    return Status::InvalidArgument(
        "num_parts exceeds the number of vertices");
  }

  Partitioning result;
  result.num_parts = k;
  if (k == 1) {
    result.part.assign(n, 0);
    result.edge_cut = 0;
    return result;
  }

  Rng rng(options.seed);
  const auto hard_cap = static_cast<int64_t>((n + k - 1) / k);
  const auto soft_cap = std::max<int64_t>(
      hard_cap,
      static_cast<int64_t>(std::ceil(static_cast<double>(hard_cap) *
                                     (1.0 + options.imbalance))));

  // Coarsening phase.
  std::vector<LevelGraph> levels;
  std::vector<std::vector<uint32_t>> mappings;  // mappings[i]: level i -> i+1.
  levels.push_back(FromAttributedGraph(graph));
  const size_t coarsen_target =
      std::max<size_t>(static_cast<size_t>(options.coarsen_to_factor) * k, 64);
  while (levels.back().NumVertices() > coarsen_target) {
    std::vector<uint32_t> fine_to_coarse;
    const uint32_t num_coarse =
        HeavyEdgeMatching(levels.back(), rng, &fine_to_coarse);
    // Stop when matching stalls (< 10% reduction), e.g. on star graphs.
    if (num_coarse >
        levels.back().NumVertices() -
            std::max<size_t>(1, levels.back().NumVertices() / 10)) {
      break;
    }
    LevelGraph coarse = Contract(levels.back(), fine_to_coarse, num_coarse);
    mappings.push_back(std::move(fine_to_coarse));
    levels.push_back(std::move(coarse));
  }

  // Initial partition on the coarsest level.
  std::vector<uint32_t> part =
      InitialPartition(levels.back(), k, soft_cap, rng);

  // Uncoarsening with refinement at every level.
  for (size_t li = levels.size(); li-- > 0;) {
    const LevelGraph& level = levels[li];
    std::vector<int64_t> weight = ComputePartWeights(level, part, k);
    for (int pass = 0; pass < options.refinement_passes; ++pass) {
      if (RefinePass(level, k, soft_cap, &part, &weight, rng) == 0) break;
    }
    if (li > 0) {
      // Project to the next finer level.
      const std::vector<uint32_t>& mapping = mappings[li - 1];
      std::vector<uint32_t> finer(mapping.size());
      for (size_t v = 0; v < mapping.size(); ++v) finer[v] = part[mapping[v]];
      part = std::move(finer);
    }
  }

  // Final hard-cap enforcement + one tightening sweep under the hard cap.
  PPSM_RETURN_IF_ERROR(EnforceHardCap(levels.front(), k, hard_cap, &part));
  std::vector<int64_t> weight = ComputePartWeights(levels.front(), part, k);
  for (int pass = 0; pass < options.refinement_passes; ++pass) {
    if (RefinePass(levels.front(), k, hard_cap, &part, &weight, rng) == 0) {
      break;
    }
  }

  result.part = std::move(part);
  result.edge_cut = ComputeEdgeCut(graph, result.part);
  return result;
}

size_t ComputeEdgeCut(const AttributedGraph& graph,
                      const std::vector<uint32_t>& part) {
  size_t cut = 0;
  graph.ForEachEdge([&](VertexId u, VertexId v) {
    if (part[u] != part[v]) ++cut;
  });
  return cut;
}

std::vector<size_t> PartSizes(const std::vector<uint32_t>& part,
                              uint32_t num_parts) {
  std::vector<size_t> sizes(num_parts, 0);
  for (const uint32_t p : part) ++sizes[p];
  return sizes;
}

namespace {
constexpr uint32_t kPartitioningMagic = 0x31545250;  // "PRT1"
}  // namespace

std::vector<uint8_t> Partitioning::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kPartitioningMagic);
  writer.PutVarint(num_parts);
  writer.PutVarint(edge_cut);
  writer.PutVarint(part.size());
  for (const uint32_t p : part) writer.PutVarint(p);
  return writer.TakeBytes();
}

Result<Partitioning> Partitioning::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kPartitioningMagic) {
    return Status::InvalidArgument("not a serialized Partitioning");
  }
  Partitioning result;
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_parts, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t edge_cut, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_vertices, reader.GetVarint());
  if (num_vertices > bytes.size()) {  // >= 1 byte per varint entry.
    return Status::InvalidArgument("Partitioning vertex count implausible");
  }
  result.num_parts = static_cast<uint32_t>(num_parts);
  result.edge_cut = static_cast<size_t>(edge_cut);
  result.part.reserve(num_vertices);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t p, reader.GetVarint());
    if (p >= num_parts) {
      return Status::InvalidArgument("Partitioning entry out of range");
    }
    result.part.push_back(static_cast<uint32_t>(p));
  }
  return result;
}

}  // namespace ppsm
