#ifndef PPSM_PARTITION_MULTILEVEL_PARTITIONER_H_
#define PPSM_PARTITION_MULTILEVEL_PARTITIONER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace ppsm {

/// Options for the multilevel k-way partitioner. This is our from-scratch
/// substitute for METIS [Karypis & Kumar], which the paper uses to split G
/// into k blocks before the k-automorphism transform (§2.2). Same scheme:
/// heavy-edge-matching coarsening, greedy region-growing initial partition,
/// FM-style boundary refinement during uncoarsening.
struct PartitionOptions {
  /// Number of blocks k; must be >= 1 and <= |V|.
  uint32_t num_parts = 2;
  /// Relative imbalance tolerated while refining interior levels. The final
  /// result always obeys the hard cap `ceil(|V| / k)` per part, which is
  /// what the k-automorphism construction needs.
  double imbalance = 0.05;
  /// Coarsening stops once the contracted graph has at most
  /// max(coarsen_to_factor * k, 64) vertices.
  uint32_t coarsen_to_factor = 16;
  /// Boundary-refinement sweeps per level.
  int refinement_passes = 6;
  uint64_t seed = 7;
};

/// Result of a partitioning run.
struct Partitioning {
  /// part[v] in [0, num_parts) for every vertex.
  std::vector<uint32_t> part;
  uint32_t num_parts = 0;
  /// Number of edges whose endpoints land in different parts.
  size_t edge_cut = 0;

  /// Stable export of the assignment ("PRT1" header + varint-encoded part
  /// list). Shard snapshots embed this so a reloaded cluster reuses the
  /// exact vertex-to-shard assignment the upload was built with, instead of
  /// trusting the partitioner to reproduce it across code versions.
  std::vector<uint8_t> Serialize() const;
  static Result<Partitioning> Deserialize(std::span<const uint8_t> bytes);

  friend bool operator==(const Partitioning&, const Partitioning&) = default;
};

/// Partitions `graph` into `options.num_parts` blocks, each of size at most
/// `ceil(|V| / num_parts)`, minimizing the edge cut heuristically.
/// Deterministic in options.seed.
Result<Partitioning> PartitionGraph(const AttributedGraph& graph,
                                    const PartitionOptions& options);

/// Recomputes the edge cut of an assignment (for tests / verification).
size_t ComputeEdgeCut(const AttributedGraph& graph,
                      const std::vector<uint32_t>& part);

/// Number of vertices per part.
std::vector<size_t> PartSizes(const std::vector<uint32_t>& part,
                              uint32_t num_parts);

}  // namespace ppsm

#endif  // PPSM_PARTITION_MULTILEVEL_PARTITIONER_H_
