#include "cloud/data_owner.h"

#include "kauto/outsourced_graph.h"
#include "match/result_join.h"
#include "util/timer.h"

namespace ppsm {

Result<DataOwner> DataOwner::Create(AttributedGraph graph,
                                    std::shared_ptr<const Schema> schema,
                                    const DataOwnerOptions& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("data owner needs the schema");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");

  DataOwner owner;
  owner.graph_ = std::move(graph);
  owner.schema_ = std::move(schema);
  owner.baseline_ = options.baseline_upload;

  WallTimer total_timer;
  WallTimer phase_timer;

  // Label combination (§5.2) and LCT construction.
  PPSM_ASSIGN_OR_RETURN(owner.lct_,
                        BuildLct(options.strategy, *owner.schema_,
                                 owner.graph_, options.grouping));
  owner.setup_stats_.lct_ms = phase_timer.ElapsedMillis();

  // G -> G': rewrite labels to group ids (§3).
  phase_timer.Restart();
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph generalized,
                        owner.lct_.AnonymizeGraph(owner.graph_));
  owner.setup_stats_.anonymize_ms = phase_timer.ElapsedMillis();

  // G' -> Gk (+AVT).
  phase_timer.Restart();
  KAutomorphismOptions kauto = options.kauto;
  kauto.k = options.k;
  PPSM_ASSIGN_OR_RETURN(owner.kag_,
                        BuildKAutomorphicGraph(generalized, kauto));
  owner.setup_stats_.kauto_ms = phase_timer.ElapsedMillis();
  owner.setup_stats_.gk_vertices = owner.kag_.gk.NumVertices();
  owner.setup_stats_.gk_edges = owner.kag_.gk.NumEdges();
  owner.setup_stats_.noise_vertices = owner.kag_.NumNoiseVertices();
  owner.setup_stats_.noise_edges = owner.kag_.NumNoiseEdges();

  // Upload package and client-side filter index.
  phase_timer.Restart();
  PPSM_RETURN_IF_ERROR(owner.BuildUploadAndIndex());
  owner.setup_stats_.go_ms = phase_timer.ElapsedMillis();
  owner.setup_stats_.total_ms = total_timer.ElapsedMillis();
  return owner;
}

Result<DataOwner> DataOwner::Restore(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     Lct lct, KAutomorphicGraph kag,
                                     bool baseline_upload) {
  if (schema == nullptr) {
    return Status::InvalidArgument("data owner needs the schema");
  }
  PPSM_RETURN_IF_ERROR(lct.Validate(*schema));
  PPSM_RETURN_IF_ERROR(kag.avt.Validate());
  if (kag.num_original_vertices != graph.NumVertices()) {
    return Status::InvalidArgument(
        "Gk original-vertex count disagrees with the graph");
  }
  if (kag.gk.NumVertices() !=
      static_cast<size_t>(kag.avt.k()) * kag.avt.num_rows()) {
    return Status::InvalidArgument("AVT does not cover Gk");
  }
  if (kag.num_original_edges > kag.gk.NumEdges() ||
      kag.num_original_edges != graph.NumEdges()) {
    return Status::InvalidArgument(
        "Gk original-edge count disagrees with the graph");
  }

  DataOwner owner;
  owner.graph_ = std::move(graph);
  owner.schema_ = std::move(schema);
  owner.lct_ = std::move(lct);
  owner.kag_ = std::move(kag);
  owner.baseline_ = baseline_upload;
  owner.setup_stats_.gk_vertices = owner.kag_.gk.NumVertices();
  owner.setup_stats_.gk_edges = owner.kag_.gk.NumEdges();
  owner.setup_stats_.noise_vertices = owner.kag_.NumNoiseVertices();
  owner.setup_stats_.noise_edges = owner.kag_.NumNoiseEdges();
  PPSM_RETURN_IF_ERROR(owner.BuildUploadAndIndex());
  return owner;
}

Status DataOwner::BuildUploadAndIndex() {
  UploadPackage package;
  package.k = kag_.avt.k();
  package.num_types = static_cast<uint32_t>(schema_->NumTypes());
  package.type_of_group.reserve(lct_.NumGroups());
  for (GroupId g = 0; g < lct_.NumGroups(); ++g) {
    package.type_of_group.push_back(lct_.TypeOfGroup(g));
  }
  if (baseline_) {
    package.full_gk = kag_.gk;
    setup_stats_.go_vertices = kag_.gk.NumVertices();
    setup_stats_.go_edges = kag_.gk.NumEdges();
  } else {
    PPSM_ASSIGN_OR_RETURN(OutsourcedGraph go, BuildOutsourcedGraph(kag_));
    setup_stats_.go_vertices = go.graph.NumVertices();
    setup_stats_.go_edges = go.graph.NumEdges();
    package.go = std::move(go);
    package.avt = kag_.avt;
  }
  upload_bytes_ = package.Serialize();
  setup_stats_.upload_bytes = upload_bytes_.size();

  // The client-side O(1) edge filter (§4.2.2).
  edge_keys_.clear();
  edge_keys_.reserve(graph_.NumEdges() * 2);
  graph_.ForEachEdge([this](VertexId u, VertexId v) {
    edge_keys_.insert(UndirectedEdgeKey(u, v));
  });
  return Status::OK();
}

Result<AttributedGraph> DataOwner::AnonymizeQuery(
    const AttributedGraph& query) const {
  return lct_.AnonymizeGraph(query);
}

Result<std::vector<uint8_t>> DataOwner::AnonymizeQueryToRequest(
    const AttributedGraph& query) const {
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph qo, AnonymizeQuery(query));
  return SerializeQueryRequest(qo);
}

Result<MatchSet> DataOwner::ProcessResponse(
    const AttributedGraph& query, std::span<const uint8_t> response_payload,
    ClientStats* stats) const {
  WallTimer total_timer;
  PPSM_ASSIGN_OR_RETURN(const MatchSet rin,
                        MatchSet::Deserialize(response_payload));
  if (rin.arity() != query.NumVertices()) {
    return Status::InvalidArgument(
        "response arity disagrees with the query");
  }

  // Lines 1-5: R(Qo,Gk) = Rin ∪ F_1(Rin) ∪ ... ∪ F_{k-1}(Rin). The baseline
  // response is R(Qo,Gk) already.
  WallTimer phase_timer;
  MatchSet candidates =
      baseline_ ? rin : ExpandByAutomorphisms(rin, kag_.avt);
  const double expand_ms = phase_timer.ElapsedMillis();

  // Lines 6-23: drop matches with vertices/edges missing from G or labels
  // that do not satisfy the original query.
  phase_timer.Restart();
  MatchSet results(query.NumVertices());
  const size_t original_vertices = kag_.num_original_vertices;
  for (size_t r = 0; r < candidates.NumMatches(); ++r) {
    const auto match = candidates.Get(r);
    bool keep = !MatchSet::HasDuplicateVertices(match);
    for (size_t q = 0; keep && q < match.size(); ++q) {
      const VertexId v = match[q];
      if (v >= original_vertices) {
        keep = false;  // Noise vertex (or id outside G).
        break;
      }
      if (!graph_.TypesContainAll(v, query.Types(static_cast<VertexId>(q))) ||
          !graph_.LabelsContainAll(v,
                                   query.Labels(static_cast<VertexId>(q)))) {
        keep = false;
      }
    }
    if (keep) {
      query.ForEachEdge([&](VertexId a, VertexId b) {
        if (keep &&
            !edge_keys_.contains(UndirectedEdgeKey(match[a], match[b]))) {
          keep = false;
        }
      });
    }
    if (keep) results.Append(match);
  }
  results.SortDedup();

  if (stats != nullptr) {
    stats->expand_ms = expand_ms;
    stats->filter_ms = phase_timer.ElapsedMillis();
    stats->candidates = candidates.NumMatches();
    stats->results = results.NumMatches();
    stats->total_ms = total_timer.ElapsedMillis();
  }
  return results;
}

}  // namespace ppsm
