#include "cloud/data_owner.h"

#include <condition_variable>
#include <mutex>

#include "cloud/cluster.h"
#include "kauto/outsourced_graph.h"
#include "match/result_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ppsm {

namespace {

/// Registry handles for the offline pipeline and the client post-process.
/// SetupStats / ClientStats remain the per-call views; these accumulate for
/// export (DESIGN.md "Observability").
struct OwnerMetrics {
  MetricsRegistry::Counter setups;
  MetricsRegistry::Counter responses;
  MetricsRegistry::Counter candidates;
  MetricsRegistry::Counter results;
  MetricsRegistry::Histogram lct_ms;
  MetricsRegistry::Histogram anonymize_ms;
  MetricsRegistry::Histogram kauto_ms;
  MetricsRegistry::Histogram go_ms;
  MetricsRegistry::Histogram setup_total_ms;
  MetricsRegistry::Histogram expand_ms;
  MetricsRegistry::Histogram filter_ms;
  MetricsRegistry::Histogram client_total_ms;
  MetricsRegistry::Gauge upload_bytes;
  MetricsRegistry::Gauge noise_vertices;
  MetricsRegistry::Gauge noise_edges;
  MetricsRegistry::Gauge setup_threads;

  static const OwnerMetrics& Get() {
    static const OwnerMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      OwnerMetrics metrics;
      metrics.setups =
          r.counter("ppsm_setup_runs_total", "Offline pipeline executions");
      metrics.responses = r.counter("ppsm_client_responses_total",
                                    "Cloud responses post-processed");
      metrics.candidates = r.counter("ppsm_client_candidates_total",
                                     "|R(Qo,Gk)| rows examined (Alg. 3)");
      metrics.results =
          r.counter("ppsm_client_results_total", "Exact |R(Q,G)| rows kept");
      metrics.lct_ms = r.histogram("ppsm_setup_lct_ms",
                                   DefaultLatencyBucketsMs(),
                                   "Label-combination search time");
      metrics.anonymize_ms =
          r.histogram("ppsm_setup_anonymize_ms", DefaultLatencyBucketsMs(),
                      "G -> G' label rewrite time");
      metrics.kauto_ms = r.histogram("ppsm_setup_kauto_ms",
                                     DefaultLatencyBucketsMs(),
                                     "k-automorphism construction time");
      metrics.go_ms = r.histogram("ppsm_setup_go_ms",
                                  DefaultLatencyBucketsMs(),
                                  "Go extraction + upload packaging time");
      metrics.setup_total_ms =
          r.histogram("ppsm_setup_total_ms", DefaultLatencyBucketsMs(),
                      "Offline pipeline end-to-end time");
      metrics.expand_ms = r.histogram("ppsm_client_expand_ms",
                                      DefaultLatencyBucketsMs(),
                                      "Automorphic expansion time (Alg. 3)");
      metrics.filter_ms =
          r.histogram("ppsm_client_filter_ms", DefaultLatencyBucketsMs(),
                      "False-positive elimination time (Alg. 3)");
      metrics.client_total_ms =
          r.histogram("ppsm_client_post_process_ms", DefaultLatencyBucketsMs(),
                      "Client post-processing end-to-end time");
      metrics.upload_bytes =
          r.gauge("ppsm_setup_upload_bytes", "Serialized upload package size");
      metrics.noise_vertices =
          r.gauge("ppsm_setup_noise_vertices", "Noise vertices added to Gk");
      metrics.noise_edges =
          r.gauge("ppsm_setup_noise_edges", "Noise edges added to Gk");
      metrics.setup_threads = r.gauge(
          "ppsm_setup_threads", "Workers used by the last offline pipeline");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

Result<DataOwner> DataOwner::Create(AttributedGraph graph,
                                    std::shared_ptr<const Schema> schema,
                                    const DataOwnerOptions& options) {
  if (schema == nullptr) {
    return Status::InvalidArgument("data owner needs the schema");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (options.go_hops == 0) {
    return Status::InvalidArgument("go_hops must be >= 1");
  }

  DataOwner owner;
  owner.graph_ = std::move(graph);
  owner.schema_ = std::move(schema);
  owner.baseline_ = options.baseline_upload;
  owner.go_hops_ = options.go_hops;

  const size_t threads =
      options.setup_threads == 0 ? 1 : options.setup_threads;

  WallTimer total_timer;
  WallTimer phase_timer;
  PPSM_TRACE_SPAN_CAT("setup.data_owner", "setup");
  const OwnerMetrics& metrics = OwnerMetrics::Get();
  metrics.setup_threads.Set(static_cast<double>(threads));

  // Label combination (§5.2) and LCT construction.
  {
    PPSM_TRACE_SPAN_CAT("setup.lct", "setup");
    GroupingOptions grouping = options.grouping;
    grouping.num_threads = threads;
    PPSM_ASSIGN_OR_RETURN(owner.lct_,
                          BuildLct(options.strategy, *owner.schema_,
                                   owner.graph_, grouping));
  }
  owner.setup_stats_.lct_ms = phase_timer.ElapsedMillis();
  metrics.lct_ms.Observe(owner.setup_stats_.lct_ms);

  // G -> G': rewrite labels to group ids (§3).
  phase_timer.Restart();
  Result<AttributedGraph> generalized_or = [&] {
    PPSM_TRACE_SPAN_CAT("setup.label_generalization", "setup");
    return owner.lct_.AnonymizeGraph(owner.graph_);
  }();
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph generalized,
                        std::move(generalized_or));
  owner.setup_stats_.anonymize_ms = phase_timer.ElapsedMillis();
  metrics.anonymize_ms.Observe(owner.setup_stats_.anonymize_ms);

  // G' -> Gk (+AVT).
  phase_timer.Restart();
  KAutomorphismOptions kauto = options.kauto;
  kauto.k = options.k;
  kauto.num_threads = threads;
  {
    PPSM_TRACE_SPAN_CAT("setup.kauto", "setup");
    PPSM_ASSIGN_OR_RETURN(owner.kag_,
                          BuildKAutomorphicGraph(generalized, kauto));
  }
  owner.setup_stats_.kauto_ms = phase_timer.ElapsedMillis();
  metrics.kauto_ms.Observe(owner.setup_stats_.kauto_ms);
  owner.setup_stats_.gk_vertices = owner.kag_.gk.NumVertices();
  owner.setup_stats_.gk_edges = owner.kag_.gk.NumEdges();
  owner.setup_stats_.noise_vertices = owner.kag_.NumNoiseVertices();
  owner.setup_stats_.noise_edges = owner.kag_.NumNoiseEdges();

  // Upload package and client-side filter index.
  phase_timer.Restart();
  {
    PPSM_TRACE_SPAN_CAT("setup.upload_build", "setup");
    PPSM_RETURN_IF_ERROR(owner.BuildUploadAndIndex(threads));
  }
  owner.setup_stats_.go_ms = phase_timer.ElapsedMillis();
  owner.setup_stats_.total_ms = total_timer.ElapsedMillis();
  metrics.go_ms.Observe(owner.setup_stats_.go_ms);
  metrics.setup_total_ms.Observe(owner.setup_stats_.total_ms);
  metrics.upload_bytes.Set(
      static_cast<double>(owner.setup_stats_.upload_bytes));
  metrics.noise_vertices.Set(
      static_cast<double>(owner.setup_stats_.noise_vertices));
  metrics.noise_edges.Set(static_cast<double>(owner.setup_stats_.noise_edges));
  metrics.setups.Increment();
  return owner;
}

Result<DataOwner> DataOwner::Restore(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     Lct lct, KAutomorphicGraph kag,
                                     bool baseline_upload,
                                     uint32_t go_hops) {
  if (schema == nullptr) {
    return Status::InvalidArgument("data owner needs the schema");
  }
  if (go_hops == 0) return Status::InvalidArgument("go_hops must be >= 1");
  PPSM_RETURN_IF_ERROR(lct.Validate(*schema));
  PPSM_RETURN_IF_ERROR(kag.avt.Validate());
  if (kag.num_original_vertices != graph.NumVertices()) {
    return Status::InvalidArgument(
        "Gk original-vertex count disagrees with the graph");
  }
  if (kag.gk.NumVertices() !=
      static_cast<size_t>(kag.avt.k()) * kag.avt.num_rows()) {
    return Status::InvalidArgument("AVT does not cover Gk");
  }
  if (kag.num_original_edges > kag.gk.NumEdges() ||
      kag.num_original_edges != graph.NumEdges()) {
    return Status::InvalidArgument(
        "Gk original-edge count disagrees with the graph");
  }

  DataOwner owner;
  owner.graph_ = std::move(graph);
  owner.schema_ = std::move(schema);
  owner.lct_ = std::move(lct);
  owner.kag_ = std::move(kag);
  owner.baseline_ = baseline_upload;
  owner.go_hops_ = go_hops;
  owner.setup_stats_.gk_vertices = owner.kag_.gk.NumVertices();
  owner.setup_stats_.gk_edges = owner.kag_.gk.NumEdges();
  owner.setup_stats_.noise_vertices = owner.kag_.NumNoiseVertices();
  owner.setup_stats_.noise_edges = owner.kag_.NumNoiseEdges();
  PPSM_RETURN_IF_ERROR(owner.BuildUploadAndIndex(/*num_threads=*/1));
  return owner;
}

Status DataOwner::BuildUploadAndIndex(size_t num_threads) {
  // The upload package and the client-side edge filter read disjoint state
  // (kag_/lct_ vs graph_) and are built concurrently; upload_bytes_ itself
  // never depends on the thread count.
  Status package_status = Status::OK();
  const auto build_package = [&] {
    PPSM_TRACE_SPAN_CAT("setup.upload_package", "setup");
    UploadPackage package;
    package.k = kag_.avt.k();
    package.num_types = static_cast<uint32_t>(schema_->NumTypes());
    package.type_of_group.reserve(lct_.NumGroups());
    for (GroupId g = 0; g < lct_.NumGroups(); ++g) {
      package.type_of_group.push_back(lct_.TypeOfGroup(g));
    }
    if (baseline_) {
      package.full_gk = kag_.gk;
      setup_stats_.go_vertices = kag_.gk.NumVertices();
      setup_stats_.go_edges = kag_.gk.NumEdges();
    } else {
      auto go_or = BuildOutsourcedGraph(kag_, num_threads, go_hops_);
      if (!go_or.ok()) {
        package_status = go_or.status();
        return;
      }
      OutsourcedGraph go = std::move(go_or).value();
      setup_stats_.go_vertices = go.graph.NumVertices();
      setup_stats_.go_edges = go.graph.NumEdges();
      package.go = std::move(go);
      package.avt = kag_.avt;
    }
    upload_bytes_ = package.Serialize();
    setup_stats_.upload_bytes = upload_bytes_.size();
  };
  const auto build_index = [&] {
    // The client-side O(1) edge filter (§4.2.2).
    PPSM_TRACE_SPAN_CAT("setup.edge_index", "setup");
    edge_keys_.clear();
    edge_keys_.reserve(graph_.NumEdges() * 2);
    graph_.ForEachEdge([this](VertexId u, VertexId v) {
      edge_keys_.insert(UndirectedEdgeKey(u, v));
    });
  };
  if (num_threads > 1 && !ThreadPool::InWorkerThread()) {
    // The index goes to the pool; the package stays on this thread so the
    // nested Go-extraction ParallelFor is not demoted to a worker (where it
    // would degrade to a serial loop).
    std::mutex mu;
    std::condition_variable cv;
    bool index_done = false;
    ThreadPool& pool = ThreadPool::Shared();
    pool.Submit([&] {
      build_index();
      // Notify under the lock: cv lives on the caller's stack, and the
      // caller may destroy it the moment it can observe index_done.
      std::lock_guard<std::mutex> lock(mu);
      index_done = true;
      cv.notify_one();
    });
    build_package();
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (index_done) break;
      }
      if (pool.TryRunPendingTask()) continue;
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return index_done; });
      break;
    }
  } else {
    build_package();
    build_index();
  }
  return package_status;
}

Result<ShardingPlan> DataOwner::BuildShardUploads(uint32_t num_shards,
                                                  uint64_t seed) const {
  if (baseline_) {
    return Status::InvalidArgument(
        "sharding needs the outsourced upload; the BAS baseline has no "
        "partitionable B1 block");
  }
  PPSM_ASSIGN_OR_RETURN(const UploadPackage package,
                        UploadPackage::Deserialize(upload_bytes_));
  return ppsm::BuildShardUploads(package, num_shards, seed);
}

Result<AttributedGraph> DataOwner::AnonymizeQuery(
    const AttributedGraph& query) const {
  return lct_.AnonymizeGraph(query);
}

Result<std::vector<uint8_t>> DataOwner::AnonymizeQueryToRequest(
    const AttributedGraph& query) const {
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph qo, AnonymizeQuery(query));
  return SerializeQueryRequest(qo);
}

Result<MatchSet> DataOwner::ProcessResponse(
    const AttributedGraph& query, std::span<const uint8_t> response_payload,
    ClientStats* stats) const {
  WallTimer total_timer;
  PPSM_TRACE_SPAN_CAT("client.process_response", "query");
  PPSM_ASSIGN_OR_RETURN(const MatchSet rin,
                        MatchSet::Deserialize(response_payload));
  if (rin.arity() != query.NumVertices()) {
    return Status::InvalidArgument(
        "response arity disagrees with the query");
  }

  // Lines 1-5: R(Qo,Gk) = Rin ∪ F_1(Rin) ∪ ... ∪ F_{k-1}(Rin). The baseline
  // response is R(Qo,Gk) already.
  WallTimer phase_timer;
  MatchSet candidates = [&] {
    PPSM_TRACE_SPAN_CAT("client.expand", "query");
    return baseline_ ? rin : ExpandByAutomorphisms(rin, kag_.avt);
  }();
  const double expand_ms = phase_timer.ElapsedMillis();

  // Lines 6-23: drop matches with vertices/edges missing from G or labels
  // that do not satisfy the original query.
  phase_timer.Restart();
  PPSM_TRACE_SPAN_CAT("client.filter", "query");
  MatchSet results(query.NumVertices());
  const size_t original_vertices = kag_.num_original_vertices;
  for (size_t r = 0; r < candidates.NumMatches(); ++r) {
    const auto match = candidates.Get(r);
    bool keep = !MatchSet::HasDuplicateVertices(match);
    for (size_t q = 0; keep && q < match.size(); ++q) {
      const VertexId v = match[q];
      if (v >= original_vertices) {
        keep = false;  // Noise vertex (or id outside G).
        break;
      }
      if (!graph_.TypesContainAll(v, query.Types(static_cast<VertexId>(q))) ||
          !graph_.LabelsContainAll(v,
                                   query.Labels(static_cast<VertexId>(q)))) {
        keep = false;
      }
    }
    if (keep) {
      query.ForEachEdge([&](VertexId a, VertexId b) {
        if (keep &&
            !edge_keys_.contains(UndirectedEdgeKey(match[a], match[b]))) {
          keep = false;
        }
      });
    }
    if (keep) results.Append(match);
  }
  results.SortDedup();

  const double filter_ms = phase_timer.ElapsedMillis();
  const double total_ms = total_timer.ElapsedMillis();
  const OwnerMetrics& metrics = OwnerMetrics::Get();
  metrics.expand_ms.Observe(expand_ms);
  metrics.filter_ms.Observe(filter_ms);
  metrics.client_total_ms.Observe(total_ms);
  metrics.candidates.Increment(candidates.NumMatches());
  metrics.results.Increment(results.NumMatches());
  metrics.responses.Increment();
  if (stats != nullptr) {
    stats->expand_ms = expand_ms;
    stats->filter_ms = filter_ms;
    stats->candidates = candidates.NumMatches();
    stats->results = results.NumMatches();
    stats->total_ms = total_ms;
  }
  return results;
}

}  // namespace ppsm
