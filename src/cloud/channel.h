#ifndef PPSM_CLOUD_CHANNEL_H_
#define PPSM_CLOUD_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <string>

namespace ppsm {

/// Link model for the client <-> cloud connection. The paper's testbed put
/// the client on a PC and the cloud on Azure; our substitute charges each
/// serialized message `latency + bytes / bandwidth` of simulated wall time,
/// which reproduces the paper's network-overhead comparisons (Fig. 33) —
/// they depend only on payload sizes, not on real sockets.
struct ChannelConfig {
  double bandwidth_mbps = 100.0;  // Megabits per second.
  double latency_ms = 1.0;        // Per-message one-way latency.
  /// Per-message records retained in log(). Totals (bytes/millis/messages)
  /// stay exact past the cap; only the oldest records are evicted, so
  /// million-query soak runs do not grow memory without bound. 0 disables
  /// record keeping entirely.
  size_t max_log_records = 4096;
};

/// Byte- and time-accounting channel. Not a transport: callers move the
/// bytes themselves; the channel just records what a real link would have
/// cost.
class SimulatedChannel {
 public:
  SimulatedChannel() = default;
  explicit SimulatedChannel(ChannelConfig config) : config_(config) {}

  /// Records a message of `bytes` and returns its simulated transfer time in
  /// milliseconds.
  double Transfer(size_t bytes, const std::string& description);

  size_t total_bytes() const { return total_bytes_; }
  double total_millis() const { return total_millis_; }
  /// Messages ever transferred — exact even after log eviction.
  size_t num_messages() const { return num_messages_; }

  struct Record {
    std::string description;
    size_t bytes;
    double millis;
  };
  /// The most recent messages (up to config.max_log_records), oldest first.
  const std::deque<Record>& log() const { return log_; }

  void Reset();

 private:
  ChannelConfig config_;
  size_t total_bytes_ = 0;
  double total_millis_ = 0.0;
  size_t num_messages_ = 0;
  std::deque<Record> log_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CHANNEL_H_
