#ifndef PPSM_CLOUD_CHANNEL_H_
#define PPSM_CLOUD_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace ppsm {

/// Link model for the client <-> cloud connection. The paper's testbed put
/// the client on a PC and the cloud on Azure; our substitute charges each
/// serialized message `latency + bytes / bandwidth` of simulated wall time,
/// which reproduces the paper's network-overhead comparisons (Fig. 33) —
/// they depend only on payload sizes, not on real sockets.
struct ChannelConfig {
  double bandwidth_mbps = 100.0;  // Megabits per second.
  double latency_ms = 1.0;        // Per-message one-way latency.
  /// Per-message records retained in log(). Totals (bytes/millis/messages)
  /// stay exact past the cap; only the oldest records are evicted, so
  /// million-query soak runs do not grow memory without bound. 0 disables
  /// record keeping entirely.
  size_t max_log_records = 4096;
};

/// InvalidArgument unless the config describes a physical link:
/// bandwidth_mbps must be finite and strictly positive (Transfer divides by
/// it — zero or negative would turn every transfer into inf/negative
/// millis and poison the ppsm_network_transfer_ms metrics and bench CSVs),
/// latency_ms finite and non-negative.
Status ValidateChannelConfig(const ChannelConfig& config);

/// Byte- and time-accounting channel. Not a transport: callers move the
/// bytes themselves; the channel just records what a real link would have
/// cost.
///
/// Thread-safe: concurrent queries (PpsmSystem::QueryBatch) account their
/// request/response transfers through one shared channel, so the totals and
/// the log are guarded by an internal mutex. Exception: the reference
/// returned by log() is only safe to read while no Transfer runs.
class SimulatedChannel {
 public:
  SimulatedChannel() : mu_(std::make_unique<std::mutex>()) {}
  /// Requires a valid config — an invalid one is replaced with the default
  /// link (and logged) so a channel can never emit inf/negative transfer
  /// times. Construction sites that can report errors should use Create.
  explicit SimulatedChannel(ChannelConfig config);

  /// Validated construction: typed InvalidArgument instead of the ctor's
  /// silent fallback.
  static Result<SimulatedChannel> Create(ChannelConfig config);

  /// Records a message of `bytes` and returns its simulated transfer time in
  /// milliseconds. Thread-safe; const because concurrent accounting must run
  /// under PpsmSystem::Query() const (the bookkeeping is observability, not
  /// logical channel state).
  double Transfer(size_t bytes, const std::string& description) const;

  size_t total_bytes() const { return Locked(total_bytes_); }
  double total_millis() const { return Locked(total_millis_); }
  /// Messages ever transferred — exact even after log eviction.
  size_t num_messages() const { return Locked(num_messages_); }
  /// Records evicted from log() by the max_log_records cap. Non-zero means
  /// log() is a suffix of the traffic, not the whole of it (the totals
  /// above stay exact regardless).
  size_t num_dropped_records() const { return Locked(num_dropped_records_); }

  struct Record {
    std::string description;
    size_t bytes;
    double millis;
  };
  /// The most recent messages (up to config.max_log_records), oldest first.
  /// Only valid while no concurrent Transfer runs.
  const std::deque<Record>& log() const { return log_; }

  void Reset();

 private:
  template <typename T>
  T Locked(const T& field) const {
    std::lock_guard<std::mutex> lock(*mu_);
    return field;
  }

  ChannelConfig config_;
  std::unique_ptr<std::mutex> mu_;  // Pointer keeps the channel movable.
  mutable size_t total_bytes_ = 0;
  mutable double total_millis_ = 0.0;
  mutable size_t num_messages_ = 0;
  mutable size_t num_dropped_records_ = 0;
  mutable std::deque<Record> log_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CHANNEL_H_
