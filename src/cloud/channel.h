#ifndef PPSM_CLOUD_CHANNEL_H_
#define PPSM_CLOUD_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppsm {

/// Link model for the client <-> cloud connection. The paper's testbed put
/// the client on a PC and the cloud on Azure; our substitute charges each
/// serialized message `latency + bytes / bandwidth` of simulated wall time,
/// which reproduces the paper's network-overhead comparisons (Fig. 33) —
/// they depend only on payload sizes, not on real sockets.
struct ChannelConfig {
  double bandwidth_mbps = 100.0;  // Megabits per second.
  double latency_ms = 1.0;        // Per-message one-way latency.
};

/// Byte- and time-accounting channel. Not a transport: callers move the
/// bytes themselves; the channel just records what a real link would have
/// cost.
class SimulatedChannel {
 public:
  SimulatedChannel() = default;
  explicit SimulatedChannel(ChannelConfig config) : config_(config) {}

  /// Records a message of `bytes` and returns its simulated transfer time in
  /// milliseconds.
  double Transfer(size_t bytes, const std::string& description);

  size_t total_bytes() const { return total_bytes_; }
  double total_millis() const { return total_millis_; }
  size_t num_messages() const { return log_.size(); }

  struct Record {
    std::string description;
    size_t bytes;
    double millis;
  };
  const std::vector<Record>& log() const { return log_; }

  void Reset();

 private:
  ChannelConfig config_;
  size_t total_bytes_ = 0;
  double total_millis_ = 0.0;
  std::vector<Record> log_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CHANNEL_H_
