#ifndef PPSM_CLOUD_DATA_OWNER_H_
#define PPSM_CLOUD_DATA_OWNER_H_

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "anonymize/grouping.h"
#include "anonymize/lct.h"
#include "cloud/messages.h"
#include "graph/attributed_graph.h"
#include "kauto/kautomorphism.h"
#include "match/match_set.h"
#include "util/hash.h"
#include "util/status.h"

namespace ppsm {

/// Data-owner / client configuration (one per §6.1 method: EFF, RAN, FSIM
/// choose a grouping strategy with baseline_upload=false; BAS uses the EFF
/// grouping with baseline_upload=true).
struct DataOwnerOptions {
  uint32_t k = 2;
  GroupingStrategy strategy = GroupingStrategy::kCostModel;
  /// BAS: upload the whole Gk instead of Go (+AVT).
  bool baseline_upload = false;
  /// Go extraction radius around B1 (>= 1). 1 is the paper's Go — B1 plus
  /// its one-hop neighborhood — and keeps the upload byte-identical to
  /// before; radius h lets the cloud match decomposition units of depth up
  /// to h (kauto/outsourced_graph.h). Ignored by the baseline upload.
  uint32_t go_hops = 1;
  GroupingOptions grouping;
  KAutomorphismOptions kauto;  // .k is overridden with `k`.
  /// Workers for the whole offline pipeline; overrides
  /// `grouping.num_threads` and `kauto.num_threads`. Every value produces
  /// byte-identical artifacts and upload bytes (DESIGN.md §11); 0 behaves
  /// like 1.
  size_t setup_threads = 1;
};

/// Wall time and size accounting for the offline anonymization pipeline
/// (paper Figs. 10-12).
struct SetupStats {
  double lct_ms = 0.0;        // Label-combination search.
  double anonymize_ms = 0.0;  // G -> G' label rewrite.
  double kauto_ms = 0.0;      // Partition + alignment + edge copy.
  double go_ms = 0.0;         // Outsourced-graph extraction.
  double total_ms = 0.0;
  size_t gk_vertices = 0;
  size_t gk_edges = 0;
  size_t go_vertices = 0;
  size_t go_edges = 0;  // |E(Gk)| for the baseline upload.
  size_t noise_vertices = 0;
  size_t noise_edges = 0;
  size_t upload_bytes = 0;
};

/// The trusted side of the system (paper §2.3): owns G, builds the LCT and
/// the k-automorphic artifacts, anonymizes queries, and turns the cloud's
/// Rin back into exact answers (Algorithm 3).
class DataOwner {
 public:
  /// Runs the full offline pipeline: LCT construction (chosen strategy),
  /// label generalization G -> G', k-automorphism G' -> Gk (+AVT), Go
  /// extraction, and upload-package serialization.
  static Result<DataOwner> Create(AttributedGraph graph,
                                  std::shared_ptr<const Schema> schema,
                                  const DataOwnerOptions& options);

  /// Rebuilds an owner from previously persisted artifacts (see
  /// cloud/owner_store.h) without re-running the anonymization pipeline.
  /// Validates the pieces against each other and re-derives the outsourced
  /// graph, upload package and client-side hash index (all deterministic
  /// functions of the inputs). Timing fields of setup_stats() stay zero.
  static Result<DataOwner> Restore(AttributedGraph graph,
                                   std::shared_ptr<const Schema> schema,
                                   Lct lct, KAutomorphicGraph kag,
                                   bool baseline_upload,
                                   uint32_t go_hops = 1);

  /// The serialized upload package destined for the cloud.
  const std::vector<uint8_t>& upload_bytes() const { return upload_bytes_; }
  const SetupStats& setup_stats() const { return setup_stats_; }

  /// Splits the upload into `num_shards` slice uploads for a sharded cloud
  /// (cloud/cluster.h BuildShardUploads on this owner's package). The plan
  /// is deterministic in `seed`, so persisting it (owner_store.h
  /// SaveShardUploads) and rebuilding from scratch agree exactly. Rejects
  /// baseline uploads — BAS ships all of Gk and has no B1 block to split.
  Result<ShardingPlan> BuildShardUploads(uint32_t num_shards,
                                         uint64_t seed) const;

  /// Q -> Qo: replaces each query label with its group (§4.2). The result
  /// keeps Q's vertex ids and topology.
  Result<AttributedGraph> AnonymizeQuery(const AttributedGraph& query) const;
  /// Serialized Qo request for the wire.
  Result<std::vector<uint8_t>> AnonymizeQueryToRequest(
      const AttributedGraph& query) const;

  struct ClientStats {
    double expand_ms = 0.0;  // Rout computation (skipped for baseline).
    double filter_ms = 0.0;  // False-positive elimination against G.
    double total_ms = 0.0;
    size_t candidates = 0;  // |R(Qo,Gk)| examined.
    size_t results = 0;     // |R(Q,G)|.
  };

  /// Algorithm 3: expands Rin with the automorphic functions (unless the
  /// upload was the baseline, whose response is already R(Qo,Gk)), then
  /// filters matches whose vertices, edges or labels do not exist in G.
  /// `query` must be the original (un-anonymized) Q the response answers.
  Result<MatchSet> ProcessResponse(const AttributedGraph& query,
                                   std::span<const uint8_t> response_payload,
                                   ClientStats* stats = nullptr) const;

  const AttributedGraph& graph() const { return graph_; }
  const Lct& lct() const { return lct_; }
  const KAutomorphicGraph& kag() const { return kag_; }
  bool IsBaselineUpload() const { return baseline_; }
  uint32_t k() const { return kag_.avt.k(); }
  /// Go extraction radius this owner uploads with (1 = the paper's Go).
  uint32_t go_hops() const { return go_hops_; }

 private:
  DataOwner() = default;

  /// Shared tail of Create/Restore: builds the upload package from the
  /// already-populated members and the client-side edge index. The two are
  /// independent and run concurrently when `num_threads` > 1.
  Status BuildUploadAndIndex(size_t num_threads);

  AttributedGraph graph_;
  std::shared_ptr<const Schema> schema_;
  Lct lct_;
  KAutomorphicGraph kag_;
  bool baseline_ = false;
  uint32_t go_hops_ = 1;
  std::vector<uint8_t> upload_bytes_;
  SetupStats setup_stats_;
  /// O(1) edge-existence filter over E(G) (§4.2.2's hash index).
  std::unordered_set<uint64_t, EdgeKeyHash> edge_keys_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_DATA_OWNER_H_
