#ifndef PPSM_CLOUD_MESSAGES_H_
#define PPSM_CLOUD_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "kauto/outsourced_graph.h"
#include "match/star_matcher.h"
#include "match/statistics.h"
#include "partition/multilevel_partitioner.h"
#include "util/status.h"

namespace ppsm {

/// The data owner's one-time upload to the cloud. Two shapes (paper §3 vs
/// §4.1):
///  * optimized (EFF/RAN/FSIM): the outsourced graph Go plus the AVT — the
///    cloud reconstructs any part of Gk it needs through the automorphic
///    functions;
///  * baseline (BAS): the entire k-automorphic graph Gk, no AVT.
/// Both carry the non-sensitive vocabulary dimensions the cloud's cost model
/// needs: the number of vertex types and each label group's owning type.
/// Nothing in the package maps group ids back to labels — the LCT stays with
/// the owner.
struct UploadPackage {
  uint32_t k = 1;
  uint32_t num_types = 0;
  std::vector<VertexTypeId> type_of_group;

  /// Optimized shape; engaged iff full_gk is empty.
  std::optional<OutsourcedGraph> go;
  std::optional<Avt> avt;
  /// Baseline shape.
  std::optional<AttributedGraph> full_gk;

  bool IsBaseline() const { return full_gk.has_value(); }

  std::vector<uint8_t> Serialize() const;
  static Result<UploadPackage> Deserialize(std::span<const uint8_t> bytes);
};

/// Per-query request: just the anonymized query graph Qo (its "labels" are
/// group ids; the cloud learns nothing beyond generalized structure).
std::vector<uint8_t> SerializeQueryRequest(const AttributedGraph& qo);
Result<AttributedGraph> DeserializeQueryRequest(
    std::span<const uint8_t> bytes);

/// Wire codec for the cost-model summary (match/statistics.h). Every shard
/// of a cluster plans against the SAME global statistics — shipping them in
/// the shard upload (instead of recomputing over the slice, whose B1 subset
/// is a biased sample) is what keeps per-shard candidate verdicts equal to
/// the unsharded ones. Doubles travel as raw IEEE-754 bits, so a round trip
/// is bit-exact.
std::vector<uint8_t> SerializeGkStatistics(const GkStatistics& stats);
Result<GkStatistics> DeserializeGkStatistics(std::span<const uint8_t> bytes);

/// Wire codec for one query's per-star match rows — the BSP exchange
/// payload a shard ships to the coordinator (cloud/shard_exchange.h). Rows
/// are the *un-expanded* R(S,Go) tuples (already translated to global
/// Go-local ids by the sender), so by the probe-join design the byte count
/// is independent of the privacy parameter k.
std::vector<uint8_t> SerializeStarRows(const std::vector<StarMatches>& stars);
Result<std::vector<StarMatches>> DeserializeStarRows(
    std::span<const uint8_t> bytes);

/// One shard's slice of the outsourced upload, produced by BuildShardUploads
/// (cloud/cluster.h). `package` holds the slice graph (owned B1 vertices
/// plus their one-hop halo, local ids ascending in global Go-local id, B1
/// slice as a prefix) with the FULL AVT; the sidecar fields carry what the
/// coordinator needs to stitch shard answers back into the global id space.
struct ShardUpload {
  uint32_t shard = 0;
  uint32_t num_shards = 1;
  /// |V(Go)| and |B1| of the unsharded outsourced graph.
  uint64_t global_vertices = 0;
  uint64_t global_b1 = 0;
  /// The slice itself (optimized shape only; never baseline).
  UploadPackage package;
  /// Slice-local id -> global Go-local id (strictly ascending).
  std::vector<VertexId> to_global;
  /// owned[l] == 1 iff slice-local vertex l is an owned B1 vertex (its
  /// matches are this shard's to report; halo vertices are pruned from the
  /// candidate shortlist via StarMatchOptions::candidate_filter).
  std::vector<uint8_t> owned;
  /// Global cost-model statistics (identical across the shards of a plan).
  GkStatistics stats;

  std::vector<uint8_t> Serialize() const;
  static Result<ShardUpload> Deserialize(std::span<const uint8_t> bytes);
};

/// A full sharding of one upload: the partitioner's assignment (kept so
/// snapshots reload the exact same vertex-to-shard mapping) plus one
/// ShardUpload per shard.
struct ShardingPlan {
  Partitioning partitioning;
  std::vector<ShardUpload> shards;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_MESSAGES_H_
