#ifndef PPSM_CLOUD_MESSAGES_H_
#define PPSM_CLOUD_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "kauto/outsourced_graph.h"
#include "util/status.h"

namespace ppsm {

/// The data owner's one-time upload to the cloud. Two shapes (paper §3 vs
/// §4.1):
///  * optimized (EFF/RAN/FSIM): the outsourced graph Go plus the AVT — the
///    cloud reconstructs any part of Gk it needs through the automorphic
///    functions;
///  * baseline (BAS): the entire k-automorphic graph Gk, no AVT.
/// Both carry the non-sensitive vocabulary dimensions the cloud's cost model
/// needs: the number of vertex types and each label group's owning type.
/// Nothing in the package maps group ids back to labels — the LCT stays with
/// the owner.
struct UploadPackage {
  uint32_t k = 1;
  uint32_t num_types = 0;
  std::vector<VertexTypeId> type_of_group;

  /// Optimized shape; engaged iff full_gk is empty.
  std::optional<OutsourcedGraph> go;
  std::optional<Avt> avt;
  /// Baseline shape.
  std::optional<AttributedGraph> full_gk;

  bool IsBaseline() const { return full_gk.has_value(); }

  std::vector<uint8_t> Serialize() const;
  static Result<UploadPackage> Deserialize(std::span<const uint8_t> bytes);
};

/// Per-query request: just the anonymized query graph Qo (its "labels" are
/// group ids; the cloud learns nothing beyond generalized structure).
std::vector<uint8_t> SerializeQueryRequest(const AttributedGraph& qo);
Result<AttributedGraph> DeserializeQueryRequest(
    std::span<const uint8_t> bytes);

}  // namespace ppsm

#endif  // PPSM_CLOUD_MESSAGES_H_
