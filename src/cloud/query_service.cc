#include "cloud/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ppsm {

namespace {
using SteadyClock = std::chrono::steady_clock;

struct ServiceMetrics {
  MetricsRegistry::Counter admitted;
  MetricsRegistry::Counter rejected;
  MetricsRegistry::Histogram queue_wait_ms;
  MetricsRegistry::Gauge inflight;
  MetricsRegistry::Gauge pool_queue_depth;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      ServiceMetrics metrics;
      metrics.admitted = r.counter("ppsm_cloud_admitted_total",
                                   "Queries admitted past the gate");
      metrics.rejected =
          r.counter("ppsm_cloud_admission_rejected_total",
                    "Queries refused at the gate (queue full or expired)");
      metrics.queue_wait_ms =
          r.histogram("ppsm_cloud_queue_wait_ms", DefaultLatencyBucketsMs(),
                      "Admission-queue wait per admitted query");
      metrics.inflight = r.gauge("ppsm_cloud_inflight_queries",
                                 "Queries currently executing");
      metrics.pool_queue_depth =
          r.gauge("ppsm_pool_queue_depth",
                  "Shared worker-pool backlog, sampled per admission");
      return metrics;
    }();
    return m;
  }
};
}  // namespace

AdmissionGate::AdmissionGate(size_t max_inflight, size_t queue_limit)
    : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
      queue_limit_(queue_limit) {}

Status AdmissionGate::Acquire(SteadyClock::time_point deadline) {
  const bool has_deadline = deadline != SteadyClock::time_point::max();
  std::unique_lock<std::mutex> lock(mu_);
  // An already-expired budget is refused up front — the fast path below
  // used to admit such queries and burn a slot on work whose answer nobody
  // can use (the handler would only notice the expiry mid-evaluation).
  if (has_deadline && SteadyClock::now() >= deadline) {
    return Status::DeadlineExceeded("query expired in the admission queue");
  }
  if (inflight_ < max_inflight_ && waiting_ == 0) {
    ++inflight_;
    return Status::OK();
  }
  if (waiting_ >= queue_limit_) {
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_) + " waiting, " +
        std::to_string(max_inflight_) + " in flight)");
  }
  ++waiting_;
  bool admitted;
  if (has_deadline) {
    admitted = cv_.wait_until(lock, deadline, [this] {
      return inflight_ < max_inflight_;
    });
  } else {
    cv_.wait(lock, [this] { return inflight_ < max_inflight_; });
    admitted = true;
  }
  --waiting_;
  if (admitted && has_deadline && SteadyClock::now() >= deadline) {
    // wait_until() re-evaluates the predicate at timeout, so a slot that
    // frees up exactly as the deadline passes still reports "admitted".
    // Decline it — and pass the baton: this thread may have absorbed the
    // Release() notification for that free slot, so without the re-notify
    // another waiter could sleep forever next to an idle slot.
    admitted = false;
    cv_.notify_one();
  }
  if (!admitted) {
    return Status::DeadlineExceeded("query expired in the admission queue");
  }
  ++inflight_;
  return Status::OK();
}

void AdmissionGate::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

size_t AdmissionGate::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionGate::Queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

QueryService::QueryService(const QueryHandler* handler, ServiceLimits limits)
    : handler_(handler),
      limits_(limits),
      gate_(std::make_unique<AdmissionGate>(
          limits.max_inflight,
          /*queue_limit=*/2 * std::max<size_t>(limits.max_inflight, 1))) {}

QueryService::QueryService(const QueryHandler* handler)
    : QueryService(handler, handler->limits()) {}

QueryService::QueryService(const CloudServer* server)
    : QueryService(static_cast<const QueryHandler*>(server)) {}

Result<WireAnswer> QueryService::Execute(
    std::span<const uint8_t> qo_bytes) const {
  const uint64_t budget_ms = limits_.query_deadline_ms;
  const auto deadline =
      budget_ms == 0 ? SteadyClock::time_point::max()
                     : SteadyClock::now() + std::chrono::milliseconds(
                                                budget_ms);
  return Execute(qo_bytes, deadline);
}

Result<WireAnswer> QueryService::Execute(
    std::span<const uint8_t> qo_bytes,
    SteadyClock::time_point deadline) const {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  // The query id is minted at admission — before the gate — so even a
  // refused query has an identity in the flight recorder and span args.
  const uint64_t query_id = FlightRecorder::NextQueryId();
  TraceSpan span(Tracer::Global(), "cloud.query_service.execute", "query");
  span.AddArg("query_id", query_id);
  WallTimer wait_timer;
  const Status admitted = gate_->Acquire(deadline);
  if (!admitted.ok()) {
    metrics.rejected.Increment();
    // Refusals never reach the server, so file their profile here: the
    // queue wait is the whole story of the query.
    QueryProfile refusal;
    refusal.query_id = query_id;
    refusal.status = StatusCodeLabel(admitted.code());
    refusal.queue_wait_ms = wait_timer.ElapsedMillis();
    refusal.total_ms = refusal.queue_wait_ms;
    refusal.request_bytes = qo_bytes.size();
    if (admitted.code() == StatusCode::kDeadlineExceeded) {
      refusal.timed_out_phase = "queue";
    }
    // Even a refusal costs reply bytes on the wire; account the encoded
    // error response instead of reporting 0.
    refusal.response_bytes =
        EncodedErrorResponseBytes(admitted, FromQueryProfile(refusal));
    FlightRecorder::Global().Record(std::move(refusal));
    return admitted;
  }
  const double queue_wait_ms = wait_timer.ElapsedMillis();
  metrics.queue_wait_ms.Observe(queue_wait_ms);
  metrics.admitted.Increment();
  metrics.pool_queue_depth.Set(
      static_cast<double>(ThreadPool::Shared().QueueDepth()));
  QueryContext ctx;
  ctx.query_id = query_id;
  ctx.queue_wait_ms = queue_wait_ms;
  ctx.deadline = deadline;
  CloudQueryStats stats;
  ctx.stats = &stats;
  Result<WireAnswer> answer = [&] {
    ScopedGaugeDelta inflight(metrics.inflight);
    return handler_->Serve(qo_bytes, ctx);
  }();
  gate_->Release();
  QueryProfile profile = ToQueryProfile(stats);
  profile.request_bytes = qo_bytes.size();
  if (answer.ok()) {
    profile.response_bytes = answer->response_payload.size();
  } else {
    profile.status = StatusCodeLabel(answer.status().code());
    // Error replies are not free: report the bytes of the encoded error
    // response the client actually receives (was 0 before, which made
    // failed queries look cheaper than they are in Fig. 22-style sums).
    profile.response_bytes = EncodedErrorResponseBytes(answer.status(), stats);
  }
  FlightRecorder::Global().Record(std::move(profile));
  return answer;
}

}  // namespace ppsm
