#ifndef PPSM_CLOUD_CLUSTER_H_
#define PPSM_CLOUD_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/messages.h"
#include "query/query_api.h"
#include "util/status.h"

namespace ppsm {

/// Splits an optimized upload into `num_shards` slice uploads. The B1 block
/// is partitioned with the multilevel partitioner (deterministic in `seed`);
/// each shard's slice holds its owned B1 vertices plus their one-hop halo,
/// with exactly the Go edges incident to an owned vertex. Slice-local ids
/// ascend in global Go-local id, which (a) preserves every owned vertex's
/// adjacency order and (b) keeps the slice's B1 vertices a prefix — the two
/// properties the byte-identical merge in CloudCluster::Serve rests on.
/// Every shard carries the FULL AVT and the GLOBAL cost-model statistics, so
/// shard-local candidate verdicts and the coordinator's plan equal the
/// unsharded ones. Baseline (BAS) packages are rejected: sharding exists for
/// the outsourced shape.
Result<ShardingPlan> BuildShardUploads(const UploadPackage& package,
                                       uint32_t num_shards, uint64_t seed);

/// A single-process sharded cloud: S CloudServer shards, each hosting the
/// partitioner-assigned slice of Go, fronted by a coordinator that plans
/// globally and merges shard answers. One query runs as a BSP superstep:
///
///   plan (coordinator, global)  ->  match (each shard, its owned centers)
///   ->  exchange (shards ship un-expanded R(S,Go) rows over simulated
///   links)  ->  merge + probe join (coordinator)
///
/// Results are BYTE-IDENTICAL to the unsharded CloudServer at any shard
/// count: candidate sets, cost-model sums (same floating-point order),
/// decomposition, row enumeration order and the join all reproduce the
/// single-server execution exactly (DESIGN.md §13 gives the argument).
/// Because the exchange ships un-expanded rows, its byte volume is
/// independent of the privacy parameter k.
///
/// Thread-safety: like CloudServer — immutable after hosting except the
/// plan cache behind its own mutex; Serve is const and concurrency-safe.
class CloudCluster : public QueryHandler {
 public:
  ~CloudCluster() override;
  CloudCluster(CloudCluster&&) noexcept;
  CloudCluster& operator=(CloudCluster&&) noexcept;

  /// Builds the sharding plan from a serialized/in-memory upload and hosts
  /// every shard (config.num_shards slices, partition_seed-deterministic).
  static Result<CloudCluster> Host(std::span<const uint8_t> package_bytes,
                                   const ClusterConfig& config,
                                   const ShardConfig& shard_config = {},
                                   const ChannelConfig& channel_config = {});
  static Result<CloudCluster> Host(UploadPackage package,
                                   const ClusterConfig& config,
                                   const ShardConfig& shard_config = {},
                                   const ChannelConfig& channel_config = {});
  /// Hosts pre-built shard uploads (the snapshot-reload path): validates
  /// cross-shard consistency, rebuilds the global id maps and hosts one
  /// CloudServer per slice.
  static Result<CloudCluster> HostShards(
      std::vector<ShardUpload> shard_uploads, const ClusterConfig& config,
      const ShardConfig& shard_config = {},
      const ChannelConfig& channel_config = {});

  /// The one query entry point (QueryHandler). Same contract as
  /// CloudServer::Serve; stats additionally carry one ShardProfile per
  /// shard.
  Result<WireAnswer> Serve(std::span<const uint8_t> qo_bytes,
                           const QueryContext& ctx = {}) const override;
  ServiceLimits limits() const override {
    return {config_.max_inflight, config_.query_deadline_ms};
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  /// The hosted shard servers (tests; PpsmSystem::cloud() reports shard 0).
  const CloudServer& shard(size_t i) const { return shards_[i]; }
  const ClusterConfig& config() const { return config_; }
  uint32_t k() const { return avt_.k(); }
  const GkStatistics& statistics() const { return stats_; }
  /// Aggregated hit/miss counters of the coordinator's plan cache.
  PlanCacheStats plan_cache_stats() const;
  /// Total bytes shipped shard -> coordinator since hosting (the exchange
  /// links' byte meters; shard 0 is the coordinator and ships nothing).
  size_t ExchangedBytes() const;

 private:
  struct PlanCache;  // Mutex + LRU, same shape as CloudServer's.

  CloudCluster() = default;

  ClusterConfig config_;
  ShardConfig shard_config_;
  std::vector<CloudServer> shards_;
  /// Exchange link of each shard; entry 0 exists but is never charged (the
  /// coordinator is colocated with shard 0).
  std::vector<SimulatedChannel> channels_;
  /// Per shard: slice-local id -> global Go-local id (ascending).
  std::vector<std::vector<VertexId>> to_global_;
  /// Per shard: owned[l] != 0 iff slice-local l is an owned B1 vertex.
  std::vector<std::vector<uint8_t>> owned_;
  /// Full Gk degree of every global B1 vertex (owned-slice degrees are
  /// complete, so these equal the unsharded Go degrees) — the cost model's
  /// per-candidate input.
  std::vector<size_t> go_degree_;
  /// Global Go-local id -> Gk id (the unsharded to_gk, reassembled).
  std::vector<VertexId> to_gk_;
  Avt avt_;             // Full table (identical on every shard).
  GkStatistics stats_;  // Global statistics (identical on every shard).
  uint64_t global_vertices_ = 0;
  uint64_t global_b1_ = 0;
  std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CLUSTER_H_
