#include "cloud/shard_exchange.h"

#include <algorithm>

namespace ppsm {

Result<std::vector<StarMatches>> ShipStarRows(
    const std::vector<StarMatches>& stars, const SimulatedChannel& channel,
    const std::string& description, ExchangeStats* stats) {
  const std::vector<uint8_t> payload = SerializeStarRows(stars);
  const double transfer_ms = channel.Transfer(payload.size(), description);
  if (stats != nullptr) {
    stats->bytes = payload.size();
    stats->transfer_ms = transfer_ms;
  }
  return DeserializeStarRows(payload);
}

Result<std::vector<StarMatches>> MergeShardStarMatches(
    const std::vector<std::vector<StarMatches>>& shard_rows) {
  if (shard_rows.empty()) {
    return Status::InvalidArgument("merge needs at least one shard stream");
  }
  const size_t num_stars = shard_rows.front().size();
  for (const std::vector<StarMatches>& rows : shard_rows) {
    if (rows.size() != num_stars) {
      return Status::InvalidArgument(
          "shard streams disagree on the star count");
    }
  }

  std::vector<StarMatches> merged;
  merged.reserve(num_stars);
  for (size_t star = 0; star < num_stars; ++star) {
    StarMatches out;
    out.center = shard_rows.front()[star].center;
    out.columns = shard_rows.front()[star].columns;
    out.matches = MatchSet(out.columns.size());
    size_t total_rows = 0;
    for (const std::vector<StarMatches>& rows : shard_rows) {
      const StarMatches& part = rows[star];
      if (part.center != out.center || part.columns != out.columns) {
        return Status::InvalidArgument(
            "shard streams disagree on star layout");
      }
      out.num_candidates += part.num_candidates;
      out.truncated = out.truncated || part.truncated;
      total_rows += part.matches.NumMatches();
    }
    if (out.truncated) {
      // Incomplete inputs cannot be merged into an exact stream; the caller
      // refuses the query at the same boundary the unsharded server would.
      merged.push_back(std::move(out));
      continue;
    }

    // Run-copying k-way merge on match column 0 (the candidate center).
    // Shards own disjoint candidates, so the smallest front value always
    // belongs to exactly one stream; copying its whole run keeps that
    // candidate's rows in the shard's (= the global) enumeration order.
    out.matches.ReserveAdditional(total_rows);
    std::vector<size_t> cursor(shard_rows.size(), 0);
    for (;;) {
      size_t best = SIZE_MAX;
      VertexId best_center = 0;
      for (size_t s = 0; s < shard_rows.size(); ++s) {
        const MatchSet& rows = shard_rows[s][star].matches;
        if (cursor[s] >= rows.NumMatches()) continue;
        const VertexId center = rows.Get(cursor[s])[0];
        if (best == SIZE_MAX || center < best_center) {
          best = s;
          best_center = center;
        }
      }
      if (best == SIZE_MAX) break;
      const MatchSet& rows = shard_rows[best][star].matches;
      while (cursor[best] < rows.NumMatches() &&
             rows.Get(cursor[best])[0] == best_center) {
        out.matches.Append(rows.Get(cursor[best]));
        ++cursor[best];
      }
    }
    merged.push_back(std::move(out));
  }
  return merged;
}

}  // namespace ppsm
