#ifndef PPSM_CLOUD_OWNER_STORE_H_
#define PPSM_CLOUD_OWNER_STORE_H_

#include <string>

#include "cloud/data_owner.h"
#include "util/status.h"

namespace ppsm {

/// Durable storage for a data owner's anonymization state. The offline
/// pipeline (partitioning + alignment + label combination) is the expensive
/// part of the system and — more importantly — must be REUSED verbatim:
/// re-anonymizing the same graph with a fresh random seed would publish a
/// second, differently-noised Gk, and intersecting two published versions
/// weakens the k-automorphism guarantee. Persisting the exact artifacts
/// avoids both problems.
///
/// Layout under `directory` (created if missing):
///   schema.bin   vocabulary (types/attributes/labels with names)
///   graph.bin    the original G
///   lct.bin      the secret label-correspondence table
///   gk.bin       the k-automorphic graph Gk
///   avt.bin      the alignment vertex table
///   meta.bin     k, baseline flag, original-size counters
///
/// Everything here is OWNER-side secret material; none of it is meant for
/// the cloud (the cloud only ever receives DataOwner::upload_bytes()).
///
/// `num_threads` workers serialize the artifacts concurrently (each file's
/// payload is an independent pure function of the owner); the files are
/// written in a fixed order and their bytes are identical at every value.
Status SaveDataOwner(const DataOwner& owner, const std::string& directory,
                     size_t num_threads = 1);

/// Restores a DataOwner saved by SaveDataOwner. Re-derives the outsourced
/// graph, upload package and client-side hash index deterministically from
/// the stored artifacts; the restored owner produces byte-identical uploads
/// and identical query post-processing.
Result<DataOwner> LoadDataOwner(const std::string& directory);

/// Persists a sharding plan (DataOwner::BuildShardUploads) so a cluster can
/// re-host the EXACT same vertex-to-shard assignment later — re-partitioning
/// with a different seed would re-slice Go and invalidate any shard-local
/// caches. Layout under `directory` (created if missing):
///   shards_meta.bin   magic, shard count, the serialized Partitioning
///   shard_<i>.bin     ShardUpload::Serialize() of shard i
/// Unlike the owner artifacts above these are CLOUD-side bytes: each file is
/// exactly what one shard server would receive over the wire.
Status SaveShardUploads(const ShardingPlan& plan,
                        const std::string& directory);

/// Reloads a SaveShardUploads directory. Validates the shard files against
/// the manifest (count, per-file shard index) and returns a plan that
/// compares equal to the one saved.
Result<ShardingPlan> LoadShardUploads(const std::string& directory);

}  // namespace ppsm

#endif  // PPSM_CLOUD_OWNER_STORE_H_
