#ifndef PPSM_CLOUD_SHARD_EXCHANGE_H_
#define PPSM_CLOUD_SHARD_EXCHANGE_H_

#include <vector>

#include "cloud/channel.h"
#include "cloud/messages.h"
#include "match/star_matcher.h"
#include "util/status.h"

namespace ppsm {

/// Accounting for one shard's BSP exchange round (cloud/cluster.h): the
/// serialized R(S,Go) row payload it shipped to the coordinator and what the
/// simulated link charged for it. Because the exchange ships *un-expanded*
/// star rows (the coordinator's probe join applies the k automorphic
/// functions), `bytes` is independent of the privacy parameter k — the
/// bench_sharding fixture asserts exactly that.
struct ExchangeStats {
  size_t bytes = 0;
  double transfer_ms = 0.0;
};

/// Ships one shard's per-star row streams to the coordinator over the
/// simulated link: serialize, charge the channel, deserialize on the far
/// side. The round trip through the wire codec is real (not a pointer
/// hand-off), so a codec regression breaks the equivalence tests instead of
/// hiding behind shared memory. Rows must already be translated to global
/// Go-local ids by the sender.
Result<std::vector<StarMatches>> ShipStarRows(
    const std::vector<StarMatches>& stars, const SimulatedChannel& channel,
    const std::string& description, ExchangeStats* stats = nullptr);

/// Merges per-shard star-match streams into the global streams the unsharded
/// server would have produced, byte for byte. Inputs must be aligned: every
/// shard evaluated the SAME decomposition, so `shard_rows[s][i]` is shard
/// s's rows for star i, with identical centers/columns across shards. Within
/// a stream rows are grouped by candidate center (match column 0) in
/// ascending id order — MatchStar enumerates its shortlist that way — and
/// shards own disjoint candidate sets, so a run-copying k-way merge on
/// column 0 reproduces the global enumeration order exactly.
/// `num_candidates` sums and `truncated` ORs across shards; a truncated
/// input skips the row merge for that star (the caller refuses the query
/// anyway, matching the unsharded ResourceExhausted boundary).
Result<std::vector<StarMatches>> MergeShardStarMatches(
    const std::vector<std::vector<StarMatches>>& shard_rows);

}  // namespace ppsm

#endif  // PPSM_CLOUD_SHARD_EXCHANGE_H_
