#include "cloud/cloud_server.h"

#include <numeric>

#include "match/decomposition.h"
#include "match/result_join.h"
#include "match/star_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace ppsm {

namespace {
/// Per-phase intermediate-row budget. A star or join state larger than this
/// means the (anonymized) query is degenerate for exact answering; the cloud
/// refuses with ResourceExhausted rather than exhausting memory.
constexpr size_t kMaxRows = 2'000'000;

/// Handles into the global registry, resolved once. CloudQueryStats stays
/// the per-query view returned to callers; these accumulate across queries
/// for export (DESIGN.md "Observability").
struct CloudMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter stars;
  MetricsRegistry::Counter rs_rows;
  MetricsRegistry::Counter result_rows;
  MetricsRegistry::Histogram decomposition_ms;
  MetricsRegistry::Histogram star_matching_ms;
  MetricsRegistry::Histogram join_ms;
  MetricsRegistry::Histogram query_ms;
  MetricsRegistry::Histogram star_rows;
  MetricsRegistry::Gauge index_memory_bytes;
  MetricsRegistry::Gauge index_build_ms;
  MetricsRegistry::Gauge hosted_edges;

  static const CloudMetrics& Get() {
    static const CloudMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      CloudMetrics metrics;
      metrics.queries =
          r.counter("ppsm_cloud_queries_total", "Queries answered");
      metrics.stars = r.counter("ppsm_cloud_stars_total",
                                "Stars across all decompositions");
      metrics.rs_rows =
          r.counter("ppsm_cloud_rs_rows_total", "Star matches |RS|");
      metrics.result_rows =
          r.counter("ppsm_cloud_result_rows_total", "Joined rows returned");
      metrics.decomposition_ms =
          r.histogram("ppsm_cloud_decomposition_ms", DefaultLatencyBucketsMs(),
                      "Query decomposition time");
      metrics.star_matching_ms =
          r.histogram("ppsm_cloud_star_matching_ms", DefaultLatencyBucketsMs(),
                      "Star matching phase time");
      metrics.join_ms = r.histogram("ppsm_cloud_join_ms",
                                    DefaultLatencyBucketsMs(),
                                    "Result join time");
      metrics.query_ms = r.histogram("ppsm_cloud_query_ms",
                                     DefaultLatencyBucketsMs(),
                                     "Cloud query evaluation time");
      metrics.star_rows =
          r.histogram("ppsm_cloud_star_match_rows", DefaultCountBuckets(),
                      "Matches per star (recorded by the worker threads)");
      metrics.index_memory_bytes = r.gauge("ppsm_cloud_index_memory_bytes",
                                           "VBV/LBV index footprint");
      metrics.index_build_ms =
          r.gauge("ppsm_cloud_index_build_ms", "Offline index build time");
      metrics.hosted_edges =
          r.gauge("ppsm_cloud_hosted_edges", "|E| of the hosted graph");
      return metrics;
    }();
    return m;
  }
};
}  // namespace

Result<CloudServer> CloudServer::Host(std::span<const uint8_t> package_bytes) {
  PPSM_ASSIGN_OR_RETURN(UploadPackage package,
                        UploadPackage::Deserialize(package_bytes));
  return Host(std::move(package));
}

Result<CloudServer> CloudServer::Host(UploadPackage package) {
  CloudServer server;
  const size_t num_types = package.num_types;
  const size_t num_groups = package.type_of_group.size();

  size_t num_centers = 0;
  if (package.IsBaseline()) {
    server.baseline_ = true;
    server.data_ = std::move(*package.full_gk);
    num_centers = server.data_.NumVertices();
    server.to_gk_.resize(num_centers);
    std::iota(server.to_gk_.begin(), server.to_gk_.end(), 0);
    // Identity table: k = 1 makes every automorphic function the identity,
    // so the join below degenerates to a plain natural join over Gk.
    server.avt_ = Avt(1, static_cast<uint32_t>(num_centers));
    for (uint32_t v = 0; v < num_centers; ++v) server.avt_.Place(v, 0, v);
    server.stats_ = ComputeGraphStatistics(server.data_, package.k, num_types,
                                           std::move(package.type_of_group));
  } else {
    if (!package.go.has_value() || !package.avt.has_value()) {
      return Status::InvalidArgument("optimized upload lacks Go or AVT");
    }
    if (package.avt->k() != package.k) {
      return Status::InvalidArgument("AVT k disagrees with package k");
    }
    if (package.go->num_b1 != package.avt->num_rows()) {
      return Status::InvalidArgument("Go block size disagrees with AVT rows");
    }
    for (const VertexId gk_id : package.go->to_gk) {
      if (!package.avt->Contains(gk_id)) {
        return Status::InvalidArgument("Go references vertex outside AVT");
      }
    }
    server.stats_ = ComputeGkStatistics(*package.go, num_types,
                                        std::move(package.type_of_group));
    num_centers = package.go->num_b1;
    server.to_gk_ = std::move(package.go->to_gk);
    server.data_ = std::move(package.go->graph);
    server.avt_ = std::move(*package.avt);
  }

  WallTimer timer;
  {
    PPSM_TRACE_SPAN_CAT("cloud.index_build", "setup");
    server.index_ =
        CloudIndex::Build(server.data_, num_centers, num_types, num_groups);
  }
  server.index_build_ms_ = timer.ElapsedMillis();
  const CloudMetrics& metrics = CloudMetrics::Get();
  metrics.index_memory_bytes.Set(
      static_cast<double>(server.index_.MemoryBytes()));
  metrics.index_build_ms.Set(server.index_build_ms_);
  metrics.hosted_edges.Set(static_cast<double>(server.data_.NumEdges()));
  return server;
}

Result<CloudServer::Answer> CloudServer::AnswerQuery(
    std::span<const uint8_t> qo_bytes) const {
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph qo,
                        DeserializeQueryRequest(qo_bytes));
  if (qo.NumVertices() == 0) {
    return Status::InvalidArgument("empty query");
  }

  Answer answer;
  WallTimer total_timer;
  PPSM_TRACE_SPAN_CAT("cloud.answer_query", "query");
  const CloudMetrics& metrics = CloudMetrics::Get();

  // Phase 1: cost-model query decomposition (exact ILP), candidate-aware
  // so hub-rooted stars with astronomic match sets are avoided.
  WallTimer phase_timer;
  Result<StarDecomposition> decomposition_or = [&] {
    PPSM_TRACE_SPAN_CAT("cloud.decompose", "query");
    return DecomposeQuery(qo, stats_, data_, index_);
  }();
  PPSM_ASSIGN_OR_RETURN(const StarDecomposition decomposition,
                        std::move(decomposition_or));
  answer.stats.decomposition_ms = phase_timer.ElapsedMillis();
  answer.stats.num_stars = decomposition.centers.size();
  metrics.decomposition_ms.Observe(answer.stats.decomposition_ms);
  metrics.stars.Increment(decomposition.centers.size());

  // Phase 2: star matching over the hosted graph (Algorithm 1), bounded by
  // the row cap so pathological queries fail with ResourceExhausted instead
  // of exhausting the machine.
  phase_timer.Restart();
  std::vector<StarMatches> stars(decomposition.centers.size());
  {
    PPSM_TRACE_SPAN_CAT("cloud.star_match", "query");
    ParallelFor(num_threads_, decomposition.centers.size(), [&](size_t i) {
      PPSM_TRACE_SPAN_CAT("cloud.star_match.star", "query");
      stars[i] = MatchStar(data_, index_, qo, decomposition.centers[i],
                           kMaxRows);
      metrics.star_rows.Observe(
          static_cast<double>(stars[i].matches.NumMatches()));
    });
  }
  // Translate to Gk ids so the join can apply the automorphic functions.
  for (StarMatches& star : stars) {
    MatchSet translated(star.matches.arity());
    std::vector<VertexId> row(star.matches.arity());
    for (size_t r = 0; r < star.matches.NumMatches(); ++r) {
      const auto local = star.matches.Get(r);
      for (size_t i = 0; i < local.size(); ++i) row[i] = to_gk_[local[i]];
      translated.Append(row);
    }
    star.matches = std::move(translated);
    answer.stats.rs_size += star.matches.NumMatches();
  }
  answer.stats.star_matching_ms = phase_timer.ElapsedMillis();
  metrics.star_matching_ms.Observe(answer.stats.star_matching_ms);
  metrics.rs_rows.Increment(answer.stats.rs_size);

  // Phase 3: result join (Algorithm 2) -> Rin (or R(Qo,Gk) for baseline).
  phase_timer.Restart();
  Result<MatchSet> rin_or = [&] {
    PPSM_TRACE_SPAN_CAT("cloud.join", "query");
    return JoinStarMatches(stars, avt_, qo.NumVertices(),
                           /*diagnostics=*/nullptr, kMaxRows);
  }();
  PPSM_ASSIGN_OR_RETURN(const MatchSet rin, std::move(rin_or));
  answer.stats.join_ms = phase_timer.ElapsedMillis();
  metrics.join_ms.Observe(answer.stats.join_ms);

  answer.stats.result_rows = rin.NumMatches();
  answer.response_payload = rin.Serialize();
  answer.stats.total_ms = total_timer.ElapsedMillis();
  metrics.result_rows.Increment(answer.stats.result_rows);
  metrics.query_ms.Observe(answer.stats.total_ms);
  metrics.queries.Increment();
  return answer;
}

}  // namespace ppsm
