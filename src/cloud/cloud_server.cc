#include "cloud/cloud_server.h"

#include <mutex>
#include <numeric>
#include <optional>
#include <string>

#include "match/decomposition.h"
#include "match/result_join.h"
#include "match/star_matcher.h"
#include "match/unit_matcher.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/lru_cache.h"
#include "util/timer.h"

namespace ppsm {

namespace {
/// Per-phase intermediate-row budget. A star or join state larger than this
/// means the (anonymized) query is degenerate for exact answering; the cloud
/// refuses with ResourceExhausted rather than exhausting memory.
constexpr size_t kMaxRows = 2'000'000;

using SteadyClock = std::chrono::steady_clock;

/// Handles into the global registry, resolved once. CloudQueryStats stays
/// the per-query view returned to callers; these accumulate across queries
/// for export (DESIGN.md "Observability").
struct CloudMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter stars;
  MetricsRegistry::Counter rs_rows;
  MetricsRegistry::Counter result_rows;
  MetricsRegistry::Counter plan_cache_hits;
  MetricsRegistry::Counter plan_cache_misses;
  MetricsRegistry::Counter deadline_exceeded;
  MetricsRegistry::Histogram decomposition_ms;
  MetricsRegistry::Histogram star_matching_ms;
  MetricsRegistry::Histogram join_ms;
  MetricsRegistry::Histogram query_ms;
  MetricsRegistry::Histogram star_rows;
  MetricsRegistry::Histogram join_estimate_ratio;
  MetricsRegistry::Gauge index_memory_bytes;
  MetricsRegistry::Gauge index_build_ms;
  MetricsRegistry::Gauge hosted_edges;
  MetricsRegistry::Gauge plan_cache_entries;

  static const CloudMetrics& Get() {
    static const CloudMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      CloudMetrics metrics;
      metrics.queries =
          r.counter("ppsm_cloud_queries_total", "Queries answered");
      metrics.stars = r.counter("ppsm_cloud_stars_total",
                                "Stars across all decompositions");
      metrics.rs_rows =
          r.counter("ppsm_cloud_rs_rows_total", "Star matches |RS|");
      metrics.result_rows =
          r.counter("ppsm_cloud_result_rows_total", "Joined rows returned");
      metrics.plan_cache_hits =
          r.counter("ppsm_cloud_plan_cache_hits_total",
                    "Decompositions served from the plan cache");
      metrics.plan_cache_misses =
          r.counter("ppsm_cloud_plan_cache_misses_total",
                    "Decompositions that ran the ILP solver");
      metrics.deadline_exceeded =
          r.counter("ppsm_cloud_deadline_exceeded_total",
                    "Queries abandoned at their deadline");
      metrics.decomposition_ms =
          r.histogram("ppsm_cloud_decomposition_ms", DefaultLatencyBucketsMs(),
                      "Query decomposition time");
      metrics.star_matching_ms =
          r.histogram("ppsm_cloud_star_matching_ms", DefaultLatencyBucketsMs(),
                      "Star matching phase time");
      metrics.join_ms = r.histogram("ppsm_cloud_join_ms",
                                    DefaultLatencyBucketsMs(),
                                    "Result join time");
      metrics.query_ms = r.histogram("ppsm_cloud_query_ms",
                                     DefaultLatencyBucketsMs(),
                                     "Cloud query evaluation time");
      metrics.star_rows =
          r.histogram("ppsm_cloud_star_match_rows", DefaultCountBuckets(),
                      "Matches per star");
      // Estimate/actual join-step ratio buckets: powers of two around 1.0
      // (1.0 = perfectly calibrated cost model; the tails are the
      // mis-ordered joins worth staring at).
      metrics.join_estimate_ratio = r.histogram(
          "ppsm_cloud_join_step_estimate_ratio",
          {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0},
          "Cost-model (estimate+1)/(actual+1) per join step");
      metrics.index_memory_bytes = r.gauge("ppsm_cloud_index_memory_bytes",
                                           "VBV/LBV index footprint");
      metrics.index_build_ms =
          r.gauge("ppsm_cloud_index_build_ms", "Offline index build time");
      metrics.hosted_edges =
          r.gauge("ppsm_cloud_hosted_edges", "|E| of the hosted graph");
      metrics.plan_cache_entries =
          r.gauge("ppsm_cloud_plan_cache_entries",
                  "Plan-cache occupancy (last hosted server)");
      return metrics;
    }();
    return m;
  }
};

Status MakeDeadlineExceeded(const char* phase) {
  CloudMetrics::Get().deadline_exceeded.Increment();
  return Status::DeadlineExceeded(std::string("query deadline exceeded (") +
                                  phase + ")");
}
}  // namespace

ShardConfig ToShardConfig(const CloudConfig& config) {
  ShardConfig shard;
  shard.num_threads = config.num_threads;
  shard.plan_cache_entries = config.plan_cache_entries;
  shard.max_unit_depth = config.max_unit_depth;
  shard.aux_graph = config.aux_graph;
  shard.intersect_kernel = config.intersect_kernel;
  return shard;
}

ClusterConfig ToClusterConfig(const CloudConfig& config) {
  ClusterConfig cluster;
  cluster.max_inflight = config.max_inflight;
  cluster.query_deadline_ms = config.query_deadline_ms;
  return cluster;
}

CloudConfig ToCloudConfig(const ShardConfig& shard,
                          const ClusterConfig& cluster) {
  CloudConfig config;
  config.num_threads = shard.num_threads;
  config.plan_cache_entries = shard.plan_cache_entries;
  config.max_inflight = cluster.max_inflight;
  config.query_deadline_ms = cluster.query_deadline_ms;
  config.max_unit_depth = shard.max_unit_depth;
  config.aux_graph = shard.aux_graph;
  config.intersect_kernel = shard.intersect_kernel;
  return config;
}

/// The decomposition memo: ILP plans keyed by canonical Qo signature. The
/// only mutable state of a hosted server, guarded by `mu` so AnswerQuery
/// stays const and thread-safe. Heap-allocated because std::mutex pins the
/// address and CloudServer is moved out of Host().
struct CloudServer::PlanCache {
  explicit PlanCache(size_t capacity) : plans(capacity) {}

  std::mutex mu;
  LruCache<std::string, UnitDecomposition> plans;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

CloudServer::~CloudServer() = default;
CloudServer::CloudServer(CloudServer&&) noexcept = default;
CloudServer& CloudServer::operator=(CloudServer&&) noexcept = default;

Result<CloudServer> CloudServer::Host(std::span<const uint8_t> package_bytes,
                                      const CloudConfig& config) {
  PPSM_ASSIGN_OR_RETURN(UploadPackage package,
                        UploadPackage::Deserialize(package_bytes));
  return Host(std::move(package), config);
}

Result<CloudServer> CloudServer::Host(UploadPackage package,
                                      const CloudConfig& config) {
  return HostImpl(std::move(package), config, /*slice=*/false);
}

Result<CloudServer> CloudServer::HostSlice(UploadPackage package,
                                           const ShardConfig& config) {
  if (package.IsBaseline()) {
    return Status::InvalidArgument("shard slices require the optimized shape");
  }
  CloudConfig flat;
  flat.num_threads = config.num_threads;
  flat.plan_cache_entries = config.plan_cache_entries;
  flat.max_unit_depth = config.max_unit_depth;
  flat.aux_graph = config.aux_graph;
  flat.intersect_kernel = config.intersect_kernel;
  return HostImpl(std::move(package), flat, /*slice=*/true);
}

Result<CloudServer> CloudServer::HostImpl(UploadPackage package,
                                          const CloudConfig& config,
                                          bool slice) {
  CloudServer server;
  server.config_ = config;
  if (server.config_.num_threads == 0) server.config_.num_threads = 1;
  if (server.config_.max_inflight == 0) server.config_.max_inflight = 1;
  if (config.plan_cache_entries > 0) {
    server.plan_cache_ =
        std::make_unique<PlanCache>(config.plan_cache_entries);
  }
  const size_t num_types = package.num_types;
  const size_t num_groups = package.type_of_group.size();

  size_t num_centers = 0;
  if (package.IsBaseline()) {
    server.baseline_ = true;
    server.data_ = std::move(*package.full_gk);
    num_centers = server.data_.NumVertices();
    server.to_gk_.resize(num_centers);
    std::iota(server.to_gk_.begin(), server.to_gk_.end(), 0);
    // Identity table: k = 1 makes every automorphic function the identity,
    // so the join below degenerates to a plain natural join over Gk.
    server.avt_ = Avt(1, static_cast<uint32_t>(num_centers));
    for (uint32_t v = 0; v < num_centers; ++v) server.avt_.Place(v, 0, v);
    server.stats_ = ComputeGraphStatistics(server.data_, package.k, num_types,
                                           std::move(package.type_of_group));
  } else {
    if (!package.go.has_value() || !package.avt.has_value()) {
      return Status::InvalidArgument("optimized upload lacks Go or AVT");
    }
    if (package.avt->k() != package.k) {
      return Status::InvalidArgument("AVT k disagrees with package k");
    }
    // A shard slice hosts only its part of B1, so its prefix is smaller
    // than the AVT; the full package must cover every AVT row exactly.
    if (slice ? package.go->num_b1 > package.avt->num_rows()
              : package.go->num_b1 != package.avt->num_rows()) {
      return Status::InvalidArgument("Go block size disagrees with AVT rows");
    }
    for (const VertexId gk_id : package.go->to_gk) {
      if (!package.avt->Contains(gk_id)) {
        return Status::InvalidArgument("Go references vertex outside AVT");
      }
    }
    server.stats_ = ComputeGkStatistics(*package.go, num_types,
                                        std::move(package.type_of_group));
    server.hops_ = package.go->hops;
    num_centers = package.go->num_b1;
    server.to_gk_ = std::move(package.go->to_gk);
    server.data_ = std::move(package.go->graph);
    server.avt_ = std::move(*package.avt);
  }

  WallTimer timer;
  {
    PPSM_TRACE_SPAN_CAT("cloud.index_build", "setup");
    PPSM_ASSIGN_OR_RETURN(
        server.index_,
        CloudIndex::Build(server.data_, num_centers, num_types, num_groups,
                          server.config_.num_threads));
  }
  server.index_build_ms_ = timer.ElapsedMillis();
  const CloudMetrics& metrics = CloudMetrics::Get();
  metrics.index_memory_bytes.Set(
      static_cast<double>(server.index_.MemoryBytes()));
  metrics.index_build_ms.Set(server.index_build_ms_);
  metrics.hosted_edges.Set(static_cast<double>(server.data_.NumEdges()));
  metrics.plan_cache_entries.Set(0.0);
  return server;
}

PlanCacheStats CloudServer::plan_cache_stats() const {
  PlanCacheStats stats;
  if (plan_cache_ == nullptr) return stats;
  std::lock_guard<std::mutex> lock(plan_cache_->mu);
  stats.hits = plan_cache_->hits;
  stats.misses = plan_cache_->misses;
  stats.entries = plan_cache_->plans.size();
  stats.capacity = plan_cache_->plans.capacity();
  return stats;
}

Result<WireAnswer> CloudServer::AnswerQuery(
    std::span<const uint8_t> qo_bytes) const {
  const auto deadline =
      config_.query_deadline_ms == 0
          ? SteadyClock::time_point::max()
          : SteadyClock::now() +
                std::chrono::milliseconds(config_.query_deadline_ms);
  QueryContext ctx;
  ctx.deadline = deadline;
  return Serve(qo_bytes, ctx);
}

Result<WireAnswer> CloudServer::AnswerQuery(
    std::span<const uint8_t> qo_bytes,
    SteadyClock::time_point deadline) const {
  QueryContext ctx;
  ctx.deadline = deadline;
  return Serve(qo_bytes, ctx);
}

Result<WireAnswer> CloudServer::AnswerQuery(
    std::span<const uint8_t> qo_bytes, const QueryContext& ctx) const {
  return Serve(qo_bytes, ctx);
}

Result<WireAnswer> CloudServer::Serve(std::span<const uint8_t> qo_bytes,
                                      const QueryContext& ctx) const {
  // Per-query stats, filled as the phases run and published to ctx.stats on
  // EVERY return path — failure included — via this scope guard. The
  // Result<Answer> cannot carry stats on an error, and the failed queries
  // are exactly the ones the flight recorder needs full accounting for.
  CloudQueryStats stats;
  stats.query_id =
      ctx.query_id != 0 ? ctx.query_id : FlightRecorder::NextQueryId();
  stats.queue_wait_ms = ctx.queue_wait_ms;
  struct StatsPublisher {
    CloudQueryStats* from;
    CloudQueryStats* to;
    ~StatsPublisher() {
      if (to != nullptr) *to = *from;
    }
  } publisher{&stats, ctx.stats};

  WallTimer total_timer;
  const SteadyClock::time_point deadline = ctx.deadline;
  const bool has_deadline = deadline != SteadyClock::time_point::max();
  const auto timeout = [&](const char* phase) {
    stats.timed_out_phase = phase;
    stats.total_ms = total_timer.ElapsedMillis();
    return MakeDeadlineExceeded(phase);
  };
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("on admission");
  }
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph qo,
                        DeserializeQueryRequest(qo_bytes));
  if (qo.NumVertices() == 0) {
    return Status::InvalidArgument("empty query");
  }

  Answer answer;
  TraceSpan query_span(Tracer::Global(), "cloud.answer_query", "query");
  query_span.AddArg("query_id", stats.query_id);
  const CloudMetrics& metrics = CloudMetrics::Get();

  // Phase 1: cost-model query decomposition (exact ILP) over generalized
  // units — stars always, paths/trees up to the depth the hosted radius
  // supports — candidate-aware so hub-rooted units with astronomic match
  // sets are avoided. At depth 1 this is the paper's §4.2.1 star
  // decomposition, plan for plan. The ILP is pure in (Qo, hosted index,
  // depth cap — fixed per server), so repeated workload shapes hit the plan
  // cache and skip the solver entirely.
  WallTimer phase_timer;
  std::optional<UnitDecomposition> cached;
  std::string signature;
  if (plan_cache_ != nullptr) {
    signature = QoSignature(qo);
    std::lock_guard<std::mutex> lock(plan_cache_->mu);
    cached = plan_cache_->plans.Get(signature);
    if (cached.has_value()) {
      ++plan_cache_->hits;
    } else {
      ++plan_cache_->misses;
    }
  }
  UnitDecomposition decomposition;
  if (cached.has_value()) {
    decomposition = *std::move(cached);
    stats.plan_cache_hit = true;
    metrics.plan_cache_hits.Increment();
  } else {
    Result<UnitDecomposition> decomposition_or = [&] {
      PPSM_TRACE_SPAN_CAT("cloud.decompose", "query");
      return DecomposeQueryUnits(qo, stats_, data_, index_,
                                 EffectiveUnitDepth());
    }();
    PPSM_ASSIGN_OR_RETURN(decomposition, std::move(decomposition_or));
    if (plan_cache_ != nullptr) {
      metrics.plan_cache_misses.Increment();
      std::lock_guard<std::mutex> lock(plan_cache_->mu);
      plan_cache_->plans.Put(std::move(signature), decomposition);
      metrics.plan_cache_entries.Set(
          static_cast<double>(plan_cache_->plans.size()));
    }
  }
  stats.decomposition_ms = phase_timer.ElapsedMillis();
  stats.num_stars = decomposition.units.size();
  metrics.decomposition_ms.Observe(stats.decomposition_ms);
  metrics.stars.Increment(decomposition.units.size());
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("after decomposition");
  }

  // Phase 2: unit matching over the hosted graph (Algorithm 1, generalized).
  // MatchUnits spreads the units across the pool workers — star units run
  // MatchStar verbatim, deeper units the scoped backtracker — and each
  // candidate-root loop is additionally chunked, all bounded by the row cap
  // so pathological queries fail with ResourceExhausted instead of
  // exhausting the machine. An expired deadline cancels the remaining units
  // and candidate chunks, so the query stops within one chunk of expiry.
  phase_timer.Restart();
  UnitMatchOptions star_options;
  star_options.max_rows = kMaxRows;
  star_options.num_threads = config_.num_threads;
  star_options.use_aux_graph = config_.aux_graph;
  star_options.intersect_kernel = config_.intersect_kernel;
  MatchPhaseStats phase_stats;
  star_options.phase_stats = &phase_stats;
  if (has_deadline) {
    star_options.cancelled = [deadline] {
      return SteadyClock::now() >= deadline;
    };
  }
  std::vector<UnitMatches> stars = [&] {
    TraceSpan span(Tracer::Global(), "cloud.star_match", "query");
    span.AddArg("query_id", stats.query_id);
    span.AddArg("num_stars", static_cast<uint64_t>(
                                 decomposition.units.size()));
    return MatchUnits(data_, index_, qo, decomposition.units, star_options);
  }();
  // Per-unit profiles (the cost-model calibration inputs) are filled before
  // any early return below so even a timed-out or truncated query reports
  // what its units did.
  const bool estimates_aligned =
      decomposition.estimates.size() == stars.size();
  stats.stars.reserve(stars.size());
  bool star_truncated = false;
  for (size_t i = 0; i < stars.size(); ++i) {
    UnitProfile profile;
    profile.center = static_cast<uint32_t>(stars[i].center);
    profile.candidates = stars[i].num_candidates;
    profile.rows = stars[i].matches.NumMatches();
    profile.estimated_rows =
        estimates_aligned ? decomposition.estimates[i] : 0.0;
    profile.truncated = stars[i].truncated;
    profile.skipped = stars[i].skipped;
    profile.kind = UnitKindName(stars[i].kind);
    star_truncated = star_truncated || stars[i].truncated;
    stats.stars.push_back(profile);
  }
  stats.aux_build_ms = phase_stats.aux_build_ms;
  stats.aux_bytes = phase_stats.aux_bytes;
  stats.intersect_scalar =
      phase_stats.intersect_scalar.load(std::memory_order_relaxed);
  stats.intersect_galloping =
      phase_stats.intersect_galloping.load(std::memory_order_relaxed);
  stats.intersect_simd =
      phase_stats.intersect_simd.load(std::memory_order_relaxed);
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("during star matching");
  }
  for (const StarMatches& star : stars) {
    metrics.star_rows.Observe(
        static_cast<double>(star.matches.NumMatches()));
  }
  // Translate to Gk ids so the join can apply the automorphic functions.
  for (StarMatches& star : stars) {
    MatchSet translated(star.matches.arity());
    std::vector<VertexId> row(star.matches.arity());
    for (size_t r = 0; r < star.matches.NumMatches(); ++r) {
      const auto local = star.matches.Get(r);
      for (size_t i = 0; i < local.size(); ++i) row[i] = to_gk_[local[i]];
      translated.Append(row);
    }
    star.matches = std::move(translated);
    stats.rs_size += star.matches.NumMatches();
  }
  stats.star_matching_ms = phase_timer.ElapsedMillis();
  metrics.star_matching_ms.Observe(stats.star_matching_ms);
  metrics.rs_rows.Increment(stats.rs_size);
  if (star_truncated) {
    // Row cap fired during star matching (the deadline case returned
    // above): the match sets are incomplete, so exact answering is off the
    // table. Same status the join would produce, but with the overflow
    // attributed to the phase that caused it.
    stats.overflowed = true;
    stats.total_ms = total_timer.ElapsedMillis();
    return Status::ResourceExhausted(
        "star match set was truncated; join would be incomplete");
  }
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("before join");
  }

  // Phase 3: result join (Algorithm 2) -> Rin (or R(Qo,Gk) for baseline).
  // Probe-side partitioning across the same worker budget; the cost-model
  // estimates from the decomposition order the join steps.
  phase_timer.Restart();
  JoinOptions join_options;
  join_options.max_rows = kMaxRows;
  join_options.num_threads = config_.num_threads;
  join_options.star_cost_estimates = decomposition.estimates;
  JoinDiagnostics join_diag;
  Result<MatchSet> rin_or = [&] {
    TraceSpan span(Tracer::Global(), "cloud.join", "query");
    span.AddArg("query_id", stats.query_id);
    span.AddArg("rs_size", static_cast<uint64_t>(stats.rs_size));
    return JoinUnitMatches(stars, avt_, qo.NumVertices(), join_options,
                           &join_diag);
  }();
  stats.join_ms = phase_timer.ElapsedMillis();
  stats.join_steps = std::move(join_diag.steps);
  stats.peak_join_rows = join_diag.peak_rows;
  for (const JoinStepProfile& step : stats.join_steps) {
    if (step.estimated_rows > 0.0 && !step.overflow) {
      metrics.join_estimate_ratio.Observe(
          (step.estimated_rows + 1.0) /
          (static_cast<double>(step.output_rows) + 1.0));
    }
  }
  if (!rin_or.ok()) {
    if (rin_or.status().code() == StatusCode::kResourceExhausted) {
      stats.overflowed = true;  // A join step hit the row cap.
    }
    stats.total_ms = total_timer.ElapsedMillis();
    return rin_or.status();
  }
  const MatchSet rin = std::move(rin_or).value();
  metrics.join_ms.Observe(stats.join_ms);

  stats.result_rows = rin.NumMatches();
  answer.response_payload = rin.Serialize();
  stats.total_ms = total_timer.ElapsedMillis();
  metrics.result_rows.Increment(stats.result_rows);
  metrics.query_ms.Observe(stats.total_ms);
  metrics.queries.Increment();
  query_span.AddArg("result_rows",
                    static_cast<uint64_t>(stats.result_rows));
  query_span.AddArg("total_ms", stats.total_ms);
  answer.stats = stats;
  return answer;
}

}  // namespace ppsm
