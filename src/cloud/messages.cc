#include "cloud/messages.h"

#include "graph/serialize.h"

namespace ppsm {

namespace {

constexpr uint32_t kUploadMagic = 0x31504c55;  // "ULP1"
constexpr uint8_t kShapeOptimized = 0;
constexpr uint8_t kShapeBaseline = 1;

void PutBlob(BinaryWriter* writer, const std::vector<uint8_t>& blob) {
  writer->PutVarint(blob.size());
  for (const uint8_t b : blob) writer->PutU8(b);
}

Result<std::vector<uint8_t>> GetBlob(BinaryReader* reader) {
  PPSM_ASSIGN_OR_RETURN(const uint64_t size, reader->GetVarint());
  if (size > reader->remaining()) {
    return Status::OutOfRange("truncated blob");
  }
  std::vector<uint8_t> blob;
  blob.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint8_t b, reader->GetU8());
    blob.push_back(b);
  }
  return blob;
}

}  // namespace

std::vector<uint8_t> UploadPackage::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kUploadMagic);
  writer.PutU8(IsBaseline() ? kShapeBaseline : kShapeOptimized);
  writer.PutVarint(k);
  writer.PutVarint(num_types);
  writer.PutVarint(type_of_group.size());
  for (const VertexTypeId t : type_of_group) writer.PutVarint(t);
  if (IsBaseline()) {
    PutBlob(&writer, SerializeGraph(*full_gk));
  } else {
    PutBlob(&writer, go->Serialize());
    PutBlob(&writer, avt->Serialize());
  }
  return writer.TakeBytes();
}

Result<UploadPackage> UploadPackage::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kUploadMagic) {
    return Status::InvalidArgument("bad upload magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint8_t shape, reader.GetU8());
  UploadPackage package;
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_types, reader.GetVarint());
  if (k == 0 || k > UINT32_MAX || num_types > UINT32_MAX) {
    return Status::InvalidArgument("bad upload header");
  }
  package.k = static_cast<uint32_t>(k);
  package.num_types = static_cast<uint32_t>(num_types);
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_groups, reader.GetVarint());
  if (num_groups > reader.remaining()) {
    return Status::OutOfRange("group table exceeds payload");
  }
  package.type_of_group.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t t, reader.GetVarint());
    if (t >= package.num_types) {
      return Status::InvalidArgument("group owner type out of range");
    }
    package.type_of_group.push_back(static_cast<VertexTypeId>(t));
  }
  if (shape == kShapeBaseline) {
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> blob, GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(AttributedGraph gk,
                          DeserializeGraph(blob, /*schema=*/nullptr));
    package.full_gk = std::move(gk);
  } else if (shape == kShapeOptimized) {
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> go_blob,
                          GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(OutsourcedGraph go,
                          OutsourcedGraph::Deserialize(go_blob));
    package.go = std::move(go);
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> avt_blob,
                          GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(Avt avt, Avt::Deserialize(avt_blob));
    package.avt = std::move(avt);
  } else {
    return Status::InvalidArgument("unknown upload shape");
  }
  return package;
}

std::vector<uint8_t> SerializeQueryRequest(const AttributedGraph& qo) {
  return SerializeGraph(qo);
}

Result<AttributedGraph> DeserializeQueryRequest(
    std::span<const uint8_t> bytes) {
  return DeserializeGraph(bytes, /*schema=*/nullptr);
}

}  // namespace ppsm
