#include "cloud/messages.h"

#include <bit>

#include "graph/serialize.h"

namespace ppsm {

namespace {

constexpr uint32_t kUploadMagic = 0x31504c55;    // "ULP1"
constexpr uint32_t kStatsMagic = 0x31545347;     // "GST1"
constexpr uint32_t kStarRowsMagic = 0x31575253;  // "SRW1"
constexpr uint32_t kShardMagic = 0x31444853;     // "SHD1"
constexpr uint8_t kShapeOptimized = 0;
constexpr uint8_t kShapeBaseline = 1;

void PutDouble(BinaryWriter* writer, double value) {
  writer->PutU64(std::bit_cast<uint64_t>(value));
}

Result<double> GetDouble(BinaryReader* reader) {
  PPSM_ASSIGN_OR_RETURN(const uint64_t bits, reader->GetU64());
  return std::bit_cast<double>(bits);
}

void PutBlob(BinaryWriter* writer, const std::vector<uint8_t>& blob) {
  writer->PutVarint(blob.size());
  for (const uint8_t b : blob) writer->PutU8(b);
}

Result<std::vector<uint8_t>> GetBlob(BinaryReader* reader) {
  PPSM_ASSIGN_OR_RETURN(const uint64_t size, reader->GetVarint());
  if (size > reader->remaining()) {
    return Status::OutOfRange("truncated blob");
  }
  std::vector<uint8_t> blob;
  blob.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint8_t b, reader->GetU8());
    blob.push_back(b);
  }
  return blob;
}

}  // namespace

std::vector<uint8_t> UploadPackage::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kUploadMagic);
  writer.PutU8(IsBaseline() ? kShapeBaseline : kShapeOptimized);
  writer.PutVarint(k);
  writer.PutVarint(num_types);
  writer.PutVarint(type_of_group.size());
  for (const VertexTypeId t : type_of_group) writer.PutVarint(t);
  if (IsBaseline()) {
    PutBlob(&writer, SerializeGraph(*full_gk));
  } else {
    PutBlob(&writer, go->Serialize());
    PutBlob(&writer, avt->Serialize());
  }
  return writer.TakeBytes();
}

Result<UploadPackage> UploadPackage::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kUploadMagic) {
    return Status::InvalidArgument("bad upload magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint8_t shape, reader.GetU8());
  UploadPackage package;
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_types, reader.GetVarint());
  if (k == 0 || k > UINT32_MAX || num_types > UINT32_MAX) {
    return Status::InvalidArgument("bad upload header");
  }
  package.k = static_cast<uint32_t>(k);
  package.num_types = static_cast<uint32_t>(num_types);
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_groups, reader.GetVarint());
  if (num_groups > reader.remaining()) {
    return Status::OutOfRange("group table exceeds payload");
  }
  package.type_of_group.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t t, reader.GetVarint());
    if (t >= package.num_types) {
      return Status::InvalidArgument("group owner type out of range");
    }
    package.type_of_group.push_back(static_cast<VertexTypeId>(t));
  }
  if (shape == kShapeBaseline) {
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> blob, GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(AttributedGraph gk,
                          DeserializeGraph(blob, /*schema=*/nullptr));
    package.full_gk = std::move(gk);
  } else if (shape == kShapeOptimized) {
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> go_blob,
                          GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(OutsourcedGraph go,
                          OutsourcedGraph::Deserialize(go_blob));
    package.go = std::move(go);
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> avt_blob,
                          GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(Avt avt, Avt::Deserialize(avt_blob));
    package.avt = std::move(avt);
  } else {
    return Status::InvalidArgument("unknown upload shape");
  }
  return package;
}

std::vector<uint8_t> SerializeQueryRequest(const AttributedGraph& qo) {
  return SerializeGraph(qo);
}

Result<AttributedGraph> DeserializeQueryRequest(
    std::span<const uint8_t> bytes) {
  return DeserializeGraph(bytes, /*schema=*/nullptr);
}

std::vector<uint8_t> SerializeGkStatistics(const GkStatistics& stats) {
  BinaryWriter writer;
  writer.PutU32(kStatsMagic);
  writer.PutVarint(stats.num_gk_vertices);
  PutDouble(&writer, stats.avg_degree);
  writer.PutVarint(stats.k);
  writer.PutVarint(stats.type_freq.size());
  for (const double f : stats.type_freq) PutDouble(&writer, f);
  writer.PutVarint(stats.group_freq.size());
  for (const double f : stats.group_freq) PutDouble(&writer, f);
  writer.PutVarint(stats.type_of_group.size());
  for (const VertexTypeId t : stats.type_of_group) writer.PutVarint(t);
  return writer.TakeBytes();
}

Result<GkStatistics> DeserializeGkStatistics(std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kStatsMagic) {
    return Status::InvalidArgument("bad statistics magic");
  }
  GkStatistics stats;
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_vertices, reader.GetVarint());
  stats.num_gk_vertices = static_cast<size_t>(num_vertices);
  PPSM_ASSIGN_OR_RETURN(stats.avg_degree, GetDouble(&reader));
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  if (k == 0 || k > UINT32_MAX) {
    return Status::InvalidArgument("bad statistics k");
  }
  stats.k = static_cast<uint32_t>(k);
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_types, reader.GetVarint());
  if (num_types > reader.remaining()) {
    return Status::OutOfRange("type table exceeds payload");
  }
  stats.type_freq.reserve(num_types);
  for (uint64_t t = 0; t < num_types; ++t) {
    PPSM_ASSIGN_OR_RETURN(const double f, GetDouble(&reader));
    stats.type_freq.push_back(f);
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_group_freq, reader.GetVarint());
  if (num_group_freq > reader.remaining()) {
    return Status::OutOfRange("group table exceeds payload");
  }
  stats.group_freq.reserve(num_group_freq);
  for (uint64_t g = 0; g < num_group_freq; ++g) {
    PPSM_ASSIGN_OR_RETURN(const double f, GetDouble(&reader));
    stats.group_freq.push_back(f);
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_groups, reader.GetVarint());
  if (num_groups > reader.remaining()) {
    return Status::OutOfRange("group owner table exceeds payload");
  }
  stats.type_of_group.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t t, reader.GetVarint());
    if (t >= stats.type_freq.size()) {
      return Status::InvalidArgument("group owner type out of range");
    }
    stats.type_of_group.push_back(static_cast<VertexTypeId>(t));
  }
  return stats;
}

std::vector<uint8_t> SerializeStarRows(
    const std::vector<StarMatches>& stars) {
  BinaryWriter writer;
  writer.PutU32(kStarRowsMagic);
  writer.PutVarint(stars.size());
  for (const StarMatches& star : stars) {
    writer.PutVarint(star.center);
    writer.PutVarint(star.columns.size());
    for (const VertexId column : star.columns) writer.PutVarint(column);
    writer.PutVarint(star.num_candidates);
    writer.PutU8(star.truncated ? 1 : 0);
    PutBlob(&writer, star.matches.Serialize());
  }
  return writer.TakeBytes();
}

Result<std::vector<StarMatches>> DeserializeStarRows(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kStarRowsMagic) {
    return Status::InvalidArgument("bad star-rows magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_stars, reader.GetVarint());
  if (num_stars > reader.remaining()) {
    return Status::OutOfRange("star count exceeds payload");
  }
  std::vector<StarMatches> stars;
  stars.reserve(num_stars);
  for (uint64_t s = 0; s < num_stars; ++s) {
    StarMatches star;
    PPSM_ASSIGN_OR_RETURN(const uint64_t center, reader.GetVarint());
    star.center = static_cast<VertexId>(center);
    PPSM_ASSIGN_OR_RETURN(const uint64_t num_columns, reader.GetVarint());
    if (num_columns > reader.remaining()) {
      return Status::OutOfRange("column count exceeds payload");
    }
    star.columns.reserve(num_columns);
    for (uint64_t c = 0; c < num_columns; ++c) {
      PPSM_ASSIGN_OR_RETURN(const uint64_t column, reader.GetVarint());
      star.columns.push_back(static_cast<VertexId>(column));
    }
    PPSM_ASSIGN_OR_RETURN(const uint64_t num_candidates, reader.GetVarint());
    star.num_candidates = static_cast<size_t>(num_candidates);
    PPSM_ASSIGN_OR_RETURN(const uint8_t truncated, reader.GetU8());
    star.truncated = truncated != 0;
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> blob, GetBlob(&reader));
    PPSM_ASSIGN_OR_RETURN(star.matches, MatchSet::Deserialize(blob));
    if (star.matches.arity() != star.columns.size()) {
      return Status::InvalidArgument("star arity disagrees with columns");
    }
    stars.push_back(std::move(star));
  }
  return stars;
}

std::vector<uint8_t> ShardUpload::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kShardMagic);
  writer.PutVarint(shard);
  writer.PutVarint(num_shards);
  writer.PutVarint(global_vertices);
  writer.PutVarint(global_b1);
  PutBlob(&writer, package.Serialize());
  writer.PutSortedIds(to_global);
  writer.PutVarint(owned.size());
  for (const uint8_t o : owned) writer.PutU8(o);
  PutBlob(&writer, SerializeGkStatistics(stats));
  return writer.TakeBytes();
}

Result<ShardUpload> ShardUpload::Deserialize(std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kShardMagic) {
    return Status::InvalidArgument("bad shard upload magic");
  }
  ShardUpload upload;
  PPSM_ASSIGN_OR_RETURN(const uint64_t shard, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_shards, reader.GetVarint());
  if (num_shards == 0 || num_shards > UINT32_MAX || shard >= num_shards) {
    return Status::InvalidArgument("bad shard upload header");
  }
  upload.shard = static_cast<uint32_t>(shard);
  upload.num_shards = static_cast<uint32_t>(num_shards);
  PPSM_ASSIGN_OR_RETURN(upload.global_vertices, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(upload.global_b1, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> package_blob,
                        GetBlob(&reader));
  PPSM_ASSIGN_OR_RETURN(upload.package,
                        UploadPackage::Deserialize(package_blob));
  PPSM_ASSIGN_OR_RETURN(upload.to_global, reader.GetSortedIds());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_owned, reader.GetVarint());
  if (num_owned > reader.remaining()) {
    return Status::OutOfRange("owned table exceeds payload");
  }
  upload.owned.reserve(num_owned);
  for (uint64_t i = 0; i < num_owned; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint8_t o, reader.GetU8());
    upload.owned.push_back(o);
  }
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> stats_blob,
                        GetBlob(&reader));
  PPSM_ASSIGN_OR_RETURN(upload.stats,
                        DeserializeGkStatistics(stats_blob));
  return upload;
}

}  // namespace ppsm
