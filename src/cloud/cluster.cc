#include "cloud/cluster.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "cloud/shard_exchange.h"
#include "match/decomposition.h"
#include "match/result_join.h"
#include "match/star_matcher.h"
#include "match/unit_matcher.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/lru_cache.h"
#include "util/timer.h"

namespace ppsm {

namespace {

/// Per-phase intermediate-row budget, same value as the unsharded server's
/// (cloud_server.cc kMaxRows). Each shard enforces it locally during star
/// matching; the coordinator re-checks the merged totals so the sharded
/// refusal boundary coincides with the unsharded one: a star that would
/// truncate on one server either truncates on some shard or overflows the
/// merged stream here.
constexpr size_t kMaxRows = 2'000'000;

using SteadyClock = std::chrono::steady_clock;

struct ClusterMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter exchanged_bytes;
  MetricsRegistry::Counter deadline_exceeded;
  MetricsRegistry::Histogram exchange_ms;
  MetricsRegistry::Histogram shard_rows;
  MetricsRegistry::Gauge shards;

  static const ClusterMetrics& Get() {
    static const ClusterMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      ClusterMetrics metrics;
      metrics.queries = r.counter("ppsm_cluster_queries_total",
                                  "Queries answered by a sharded cluster");
      metrics.exchanged_bytes =
          r.counter("ppsm_cluster_exchanged_bytes_total",
                    "Star-row bytes shipped shard -> coordinator");
      metrics.deadline_exceeded =
          r.counter("ppsm_cluster_deadline_exceeded_total",
                    "Cluster queries abandoned at their deadline");
      metrics.exchange_ms =
          r.histogram("ppsm_cluster_exchange_ms", DefaultLatencyBucketsMs(),
                      "Per-shard exchange transfer time");
      metrics.shard_rows =
          r.histogram("ppsm_cluster_shard_rows", DefaultCountBuckets(),
                      "Un-expanded rows contributed per shard per query");
      metrics.shards =
          r.gauge("ppsm_cluster_shards", "Shards of the last hosted cluster");
      return metrics;
    }();
    return m;
  }
};

Status MakeDeadlineExceeded(const char* phase) {
  ClusterMetrics::Get().deadline_exceeded.Increment();
  return Status::DeadlineExceeded(std::string("query deadline exceeded (") +
                                  phase + ")");
}

}  // namespace

Result<ShardingPlan> BuildShardUploads(const UploadPackage& package,
                                       uint32_t num_shards, uint64_t seed) {
  if (package.IsBaseline()) {
    return Status::InvalidArgument(
        "sharding requires the optimized upload shape");
  }
  if (!package.go.has_value() || !package.avt.has_value()) {
    return Status::InvalidArgument("optimized upload lacks Go or AVT");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const OutsourcedGraph& go = *package.go;
  const size_t num_b1 = go.num_b1;
  const size_t num_vertices = go.graph.NumVertices();
  if (num_b1 == 0) {
    return Status::InvalidArgument("cannot shard an empty B1 block");
  }

  // Partition the B1-induced subgraph only: N1 halo vertices follow their
  // B1 neighbors into whichever slices need them, so assigning them own
  // parts would just distort the balance objective.
  GraphBuilder b1_builder;
  b1_builder.ReserveVertices(num_b1);
  for (VertexId v = 0; v < num_b1; ++v) {
    b1_builder.AddVertex(
        std::vector<VertexTypeId>(go.graph.Types(v).begin(),
                                  go.graph.Types(v).end()),
        std::vector<LabelId>(go.graph.Labels(v).begin(),
                             go.graph.Labels(v).end()));
  }
  go.graph.ForEachEdge([&](VertexId u, VertexId v) {
    if (v < num_b1) b1_builder.AddEdgeUnchecked(u, v);  // u < v always.
  });
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph b1_graph, b1_builder.Build());

  PartitionOptions part_options;
  part_options.num_parts = num_shards;
  part_options.seed = seed;
  ShardingPlan plan;
  PPSM_ASSIGN_OR_RETURN(plan.partitioning,
                        PartitionGraph(b1_graph, part_options));
  const std::vector<uint32_t>& part = plan.partitioning.part;

  // Global statistics, computed once and replicated: every shard must plan
  // against the SAME distribution (a slice's B1 subset is a biased sample).
  const GkStatistics stats = ComputeGkStatistics(
      go, package.num_types,
      std::vector<VertexTypeId>(package.type_of_group));

  const uint32_t hops = std::max<uint32_t>(go.hops, 1);
  plan.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    // Slice vertex set: owned B1 vertices plus everything within `hops` of
    // them (the one-hop halo at the paper's radius), in ascending global id
    // order — so slice-local ids are monotone in global ids (adjacency
    // order preserved) and the slice's B1 vertices form a local prefix (B1
    // globals precede every deeper ring by Go's layout). The distance-
    // bounded halo is exactly what owned-rooted units of depth <= hops
    // touch, mirroring the h-hop Go extraction around B1.
    std::vector<uint32_t> dist(num_vertices, UINT32_MAX);
    std::vector<VertexId> frontier;
    for (VertexId v = 0; v < num_b1; ++v) {
      if (part[v] != s) continue;
      dist[v] = 0;
      frontier.push_back(v);
    }
    for (uint32_t d = 1; d <= hops && !frontier.empty(); ++d) {
      std::vector<VertexId> next;
      for (const VertexId u : frontier) {
        for (const VertexId n : go.graph.Neighbors(u)) {
          if (dist[n] == UINT32_MAX) {
            dist[n] = d;
            next.push_back(n);
          }
        }
      }
      frontier = std::move(next);
    }
    ShardUpload upload;
    upload.shard = s;
    upload.num_shards = num_shards;
    upload.global_vertices = num_vertices;
    upload.global_b1 = num_b1;
    std::vector<VertexId> to_local(num_vertices, kInvalidVertex);
    for (VertexId g = 0; g < num_vertices; ++g) {
      if (dist[g] == UINT32_MAX) continue;
      to_local[g] = static_cast<VertexId>(upload.to_global.size());
      upload.to_global.push_back(g);
    }

    GraphBuilder slice_builder;
    slice_builder.ReserveVertices(upload.to_global.size());
    OutsourcedGraph slice;
    slice.k = package.k;
    slice.hops = hops;
    for (const VertexId g : upload.to_global) {
      slice_builder.AddVertex(
          std::vector<VertexTypeId>(go.graph.Types(g).begin(),
                                    go.graph.Types(g).end()),
          std::vector<LabelId>(go.graph.Labels(g).begin(),
                               go.graph.Labels(g).end()));
      slice.to_gk.push_back(go.to_gk[g]);
      const bool owned = g < num_b1 && part[g] == s;
      upload.owned.push_back(owned ? 1 : 0);
      if (g < num_b1) ++slice.num_b1;
    }
    // Slice edges: every Go edge with an endpoint within hops - 1 of the
    // owned set (at radius 1: an owned endpoint; both endpoints are then in
    // the slice by construction). Canonical rule — when both endpoints
    // qualify, the smaller global id emits — adds each edge exactly once.
    // This is the full edge set an owned-rooted unit of depth <= hops can
    // traverse: its depth-j parent vertices sit within j <= hops - 1 of an
    // owned root.
    for (VertexId u = 0; u < num_vertices; ++u) {
      if (dist[u] >= hops) continue;  // Outside the emitting prefix.
      for (const VertexId v : go.graph.Neighbors(u)) {
        const bool v_emits = dist[v] < hops;
        if (v_emits && v < u) continue;  // Emitted from v's side.
        slice_builder.AddEdgeUnchecked(to_local[u], to_local[v]);
      }
    }
    PPSM_ASSIGN_OR_RETURN(slice.graph, slice_builder.Build());

    upload.package.k = package.k;
    upload.package.num_types = package.num_types;
    upload.package.type_of_group = package.type_of_group;
    upload.package.go = std::move(slice);
    upload.package.avt = *package.avt;  // Full table on every shard.
    upload.stats = stats;
    plan.shards.push_back(std::move(upload));
  }
  return plan;
}

/// Coordinator-side plan memo, same shape as CloudServer::PlanCache.
struct CloudCluster::PlanCache {
  explicit PlanCache(size_t capacity) : plans(capacity) {}

  std::mutex mu;
  LruCache<std::string, UnitDecomposition> plans;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

CloudCluster::~CloudCluster() = default;
CloudCluster::CloudCluster(CloudCluster&&) noexcept = default;
CloudCluster& CloudCluster::operator=(CloudCluster&&) noexcept = default;

Result<CloudCluster> CloudCluster::Host(
    std::span<const uint8_t> package_bytes, const ClusterConfig& config,
    const ShardConfig& shard_config, const ChannelConfig& channel_config) {
  PPSM_ASSIGN_OR_RETURN(UploadPackage package,
                        UploadPackage::Deserialize(package_bytes));
  return Host(std::move(package), config, shard_config, channel_config);
}

Result<CloudCluster> CloudCluster::Host(UploadPackage package,
                                        const ClusterConfig& config,
                                        const ShardConfig& shard_config,
                                        const ChannelConfig& channel_config) {
  const uint32_t num_shards = std::max<uint32_t>(config.num_shards, 1);
  PPSM_ASSIGN_OR_RETURN(
      ShardingPlan plan,
      BuildShardUploads(package, num_shards, config.partition_seed));
  return HostShards(std::move(plan.shards), config, shard_config,
                    channel_config);
}

Result<CloudCluster> CloudCluster::HostShards(
    std::vector<ShardUpload> shard_uploads, const ClusterConfig& config,
    const ShardConfig& shard_config, const ChannelConfig& channel_config) {
  if (shard_uploads.empty()) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  const uint32_t num_shards = static_cast<uint32_t>(shard_uploads.size());
  for (uint32_t s = 0; s < num_shards; ++s) {
    const ShardUpload& upload = shard_uploads[s];
    if (upload.shard != s || upload.num_shards != num_shards) {
      return Status::InvalidArgument("shard uploads out of order");
    }
    if (upload.package.IsBaseline() || !upload.package.go.has_value() ||
        !upload.package.avt.has_value()) {
      return Status::InvalidArgument("shard upload is not a slice package");
    }
    if (upload.global_vertices != shard_uploads[0].global_vertices ||
        upload.global_b1 != shard_uploads[0].global_b1 ||
        upload.package.k != shard_uploads[0].package.k) {
      return Status::InvalidArgument("shard uploads disagree on the graph");
    }
    if (upload.to_global.size() != upload.package.go->graph.NumVertices() ||
        upload.owned.size() != upload.to_global.size()) {
      return Status::InvalidArgument("shard id maps disagree with the slice");
    }
  }

  CloudCluster cluster;
  cluster.config_ = config;
  cluster.shard_config_ = shard_config;
  cluster.config_.num_shards = num_shards;
  if (cluster.config_.max_inflight == 0) cluster.config_.max_inflight = 1;
  cluster.global_vertices_ = shard_uploads[0].global_vertices;
  cluster.global_b1_ = shard_uploads[0].global_b1;
  cluster.avt_ = *shard_uploads[0].package.avt;
  cluster.stats_ = shard_uploads[0].stats;
  if (shard_config.plan_cache_entries > 0) {
    cluster.plan_cache_ =
        std::make_unique<PlanCache>(shard_config.plan_cache_entries);
  }

  // Reassemble the global id maps from the slices, validating that halo
  // overlaps agree and that ownership covers every B1 vertex exactly once.
  cluster.to_gk_.assign(cluster.global_vertices_, kInvalidVertex);
  cluster.go_degree_.assign(cluster.global_b1_, SIZE_MAX);
  for (const ShardUpload& upload : shard_uploads) {
    const OutsourcedGraph& slice = *upload.package.go;
    for (size_t l = 0; l < upload.to_global.size(); ++l) {
      const VertexId g = upload.to_global[l];
      if (g >= cluster.global_vertices_) {
        return Status::InvalidArgument("shard id map out of range");
      }
      if (cluster.to_gk_[g] != kInvalidVertex &&
          cluster.to_gk_[g] != slice.to_gk[l]) {
        return Status::InvalidArgument("shards disagree on a Gk id");
      }
      cluster.to_gk_[g] = slice.to_gk[l];
      if (upload.owned[l] != 0) {
        if (g >= cluster.global_b1_) {
          return Status::InvalidArgument("owned vertex outside B1");
        }
        if (cluster.go_degree_[g] != SIZE_MAX) {
          return Status::InvalidArgument("B1 vertex owned by two shards");
        }
        cluster.go_degree_[g] = slice.graph.Degree(
            static_cast<VertexId>(l));
      }
    }
  }
  for (VertexId g = 0; g < cluster.global_b1_; ++g) {
    if (cluster.go_degree_[g] == SIZE_MAX) {
      return Status::InvalidArgument("B1 vertex owned by no shard");
    }
  }
  // N1 vertices of the unsharded Go all neighbor some B1 vertex, so every
  // global id referenced by any slice is covered; ids no slice mentions
  // (possible only for N1 vertices that neighbor no owned vertex — which
  // cannot happen, as ownership covers B1) would be caught at query time.

  cluster.shards_.reserve(num_shards);
  cluster.channels_.reserve(num_shards);
  cluster.to_global_.reserve(num_shards);
  cluster.owned_.reserve(num_shards);
  for (ShardUpload& upload : shard_uploads) {
    cluster.to_global_.push_back(std::move(upload.to_global));
    cluster.owned_.push_back(std::move(upload.owned));
    PPSM_ASSIGN_OR_RETURN(SimulatedChannel channel,
                          SimulatedChannel::Create(channel_config));
    cluster.channels_.push_back(std::move(channel));
    PPSM_ASSIGN_OR_RETURN(
        CloudServer server,
        CloudServer::HostSlice(std::move(upload.package), shard_config));
    cluster.shards_.push_back(std::move(server));
  }
  ClusterMetrics::Get().shards.Set(static_cast<double>(num_shards));
  return cluster;
}

PlanCacheStats CloudCluster::plan_cache_stats() const {
  PlanCacheStats stats;
  if (plan_cache_ == nullptr) return stats;
  std::lock_guard<std::mutex> lock(plan_cache_->mu);
  stats.hits = plan_cache_->hits;
  stats.misses = plan_cache_->misses;
  stats.entries = plan_cache_->plans.size();
  stats.capacity = plan_cache_->plans.capacity();
  return stats;
}

size_t CloudCluster::ExchangedBytes() const {
  size_t total = 0;
  for (size_t s = 1; s < channels_.size(); ++s) {
    total += channels_[s].total_bytes();
  }
  return total;
}

Result<WireAnswer> CloudCluster::Serve(std::span<const uint8_t> qo_bytes,
                                       const QueryContext& ctx) const {
  CloudQueryStats stats;
  stats.query_id =
      ctx.query_id != 0 ? ctx.query_id : FlightRecorder::NextQueryId();
  stats.queue_wait_ms = ctx.queue_wait_ms;
  struct StatsPublisher {
    CloudQueryStats* from;
    CloudQueryStats* to;
    ~StatsPublisher() {
      if (to != nullptr) *to = *from;
    }
  } publisher{&stats, ctx.stats};

  WallTimer total_timer;
  const SteadyClock::time_point deadline = ctx.deadline;
  const bool has_deadline = deadline != SteadyClock::time_point::max();
  const auto timeout = [&](const char* phase) {
    stats.timed_out_phase = phase;
    stats.total_ms = total_timer.ElapsedMillis();
    return MakeDeadlineExceeded(phase);
  };
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("on admission");
  }
  PPSM_ASSIGN_OR_RETURN(const AttributedGraph qo,
                        DeserializeQueryRequest(qo_bytes));
  if (qo.NumVertices() == 0) {
    return Status::InvalidArgument("empty query");
  }

  WireAnswer answer;
  TraceSpan query_span(Tracer::Global(), "cluster.answer_query", "query");
  query_span.AddArg("query_id", stats.query_id);
  query_span.AddArg("num_shards", static_cast<uint64_t>(shards_.size()));
  const ClusterMetrics& metrics = ClusterMetrics::Get();

  // Phase 1: GLOBAL decomposition on the coordinator, over generalized
  // units (stars always; paths/trees up to the hosted hop radius). Each
  // shard shortlists its owned root candidates (their slice verdicts equal
  // the global ones — an owned vertex's adjacency is complete in its
  // slice); the coordinator merges the disjoint lists into ascending global
  // order and evaluates the candidate-aware estimator itself, reproducing
  // the unsharded cost sums bit for bit. All shards then match the SAME
  // units.
  WallTimer phase_timer;
  std::optional<UnitDecomposition> cached;
  std::string signature;
  if (plan_cache_ != nullptr) {
    signature = QoSignature(qo);
    std::lock_guard<std::mutex> lock(plan_cache_->mu);
    cached = plan_cache_->plans.Get(signature);
    if (cached.has_value()) {
      ++plan_cache_->hits;
    } else {
      ++plan_cache_->misses;
    }
  }
  UnitDecomposition decomposition;
  if (cached.has_value()) {
    decomposition = *std::move(cached);
    stats.plan_cache_hit = true;
  } else {
    Result<UnitDecomposition> decomposition_or =
        [&]() -> Result<UnitDecomposition> {
      PPSM_TRACE_SPAN_CAT("cluster.decompose", "query");
      std::vector<QueryUnit> units =
          EnumerateCandidateUnits(qo, shards_[0].EffectiveUnitDepth());
      // Merged owned candidates (ascending global id) and their full Go
      // degrees, once per query vertex — shared by every unit rooted there.
      std::vector<std::vector<VertexId>> merged(qo.NumVertices());
      std::vector<std::vector<size_t>> degrees(qo.NumVertices());
      for (VertexId v = 0; v < qo.NumVertices(); ++v) {
        for (size_t s = 0; s < shards_.size(); ++s) {
          const std::vector<VertexId> local =
              shards_[s].index().CandidateCenters(qo, v);
          for (const VertexId l : local) {
            if (owned_[s][l] != 0) merged[v].push_back(to_global_[s][l]);
          }
        }
        std::sort(merged[v].begin(), merged[v].end());
        degrees[v].reserve(merged[v].size());
        for (const VertexId g : merged[v]) {
          degrees[v].push_back(go_degree_[g]);
        }
      }
      std::vector<double> costs;
      costs.reserve(units.size());
      for (const QueryUnit& unit : units) {
        costs.push_back(EstimateUnitCardinalityForCandidates(
            stats_, qo, unit, merged[unit.root()], degrees[unit.root()]));
      }
      return DecomposeQueryUnitsWithCosts(qo, std::move(units),
                                          std::move(costs));
    }();
    PPSM_ASSIGN_OR_RETURN(decomposition, std::move(decomposition_or));
    if (plan_cache_ != nullptr) {
      std::lock_guard<std::mutex> lock(plan_cache_->mu);
      plan_cache_->plans.Put(std::move(signature), decomposition);
    }
  }
  stats.decomposition_ms = phase_timer.ElapsedMillis();
  stats.num_stars = decomposition.units.size();
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("after decomposition");
  }

  // Phase 2: shard-local unit matching. Every shard matches the same units
  // over its slice, restricted to its owned candidate roots; rows come
  // back in slice-local ids and are translated to global Go-local ids here
  // (NOT to Gk yet — the merge must run in the monotone global id space;
  // to_gk follows AVT row order and is not monotone).
  phase_timer.Restart();
  std::vector<std::vector<UnitMatches>> shard_rows(shards_.size());
  stats.shards.resize(shards_.size());
  // Aggregated across shards: each shard builds its own slice-local aux
  // graph, so build time and footprint sum, as do the kernel counters.
  MatchPhaseStats phase_stats;
  // The wire codec ships rows/columns only, so the skipped flag (like the
  // unit kind below) must be captured before the exchange. A unit is
  // reported skipped when every shard skipped it — a shard that ran it
  // contributes real rows to the merge.
  std::vector<uint8_t> unit_skipped(decomposition.units.size(), 1);
  for (size_t s = 0; s < shards_.size(); ++s) {
    WallTimer shard_timer;
    UnitMatchOptions star_options;
    star_options.max_rows = kMaxRows;
    star_options.num_threads = shard_config_.num_threads;
    star_options.use_aux_graph = shard_config_.aux_graph;
    star_options.intersect_kernel = shard_config_.intersect_kernel;
    star_options.phase_stats = &phase_stats;
    if (has_deadline) {
      star_options.cancelled = [deadline] {
        return SteadyClock::now() >= deadline;
      };
    }
    const std::vector<uint8_t>& owned = owned_[s];
    star_options.candidate_filter = [&owned](VertexId v) {
      return owned[v] != 0;
    };
    shard_rows[s] = [&] {
      TraceSpan span(Tracer::Global(), "cluster.shard_match", "query");
      span.AddArg("query_id", stats.query_id);
      span.AddArg("shard", static_cast<uint64_t>(s));
      return MatchUnits(shards_[s].data(), shards_[s].index(), qo,
                        decomposition.units, star_options);
    }();
    const std::vector<VertexId>& to_global = to_global_[s];
    ShardProfile& profile = stats.shards[s];
    profile.shard = static_cast<uint32_t>(s);
    for (StarMatches& star : shard_rows[s]) {
      MatchSet translated(star.matches.arity());
      translated.ReserveAdditional(star.matches.NumMatches());
      std::vector<VertexId> row(star.matches.arity());
      for (size_t r = 0; r < star.matches.NumMatches(); ++r) {
        const auto local = star.matches.Get(r);
        for (size_t i = 0; i < local.size(); ++i) {
          row[i] = to_global[local[i]];
        }
        translated.Append(row);
      }
      star.matches = std::move(translated);
      profile.candidates += star.num_candidates;
      profile.rows += star.matches.NumMatches();
    }
    for (size_t i = 0;
         i < shard_rows[s].size() && i < unit_skipped.size(); ++i) {
      if (!shard_rows[s][i].skipped) unit_skipped[i] = 0;
    }
    profile.match_ms = shard_timer.ElapsedMillis();
    metrics.shard_rows.Observe(static_cast<double>(profile.rows));
  }
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("during star matching");
  }

  // Phase 2b: BSP exchange — every shard but the coordinator-colocated
  // shard 0 ships its un-expanded rows over its simulated link. The bytes
  // go through the real wire codec both ways; by the probe-join design the
  // payload is independent of k.
  for (size_t s = 1; s < shards_.size(); ++s) {
    ExchangeStats exchange;
    Result<std::vector<StarMatches>> shipped_or = [&] {
      PPSM_TRACE_SPAN_CAT("cluster.exchange", "query");
      return ShipStarRows(shard_rows[s], channels_[s],
                          "shard " + std::to_string(s) + " star rows",
                          &exchange);
    }();
    PPSM_ASSIGN_OR_RETURN(shard_rows[s], std::move(shipped_or));
    stats.shards[s].exchange_ms = exchange.transfer_ms;
    stats.shards[s].exchanged_bytes = exchange.bytes;
    metrics.exchanged_bytes.Increment(exchange.bytes);
    metrics.exchange_ms.Observe(exchange.transfer_ms);
  }

  // Phase 2c: k-way merge back into the global enumeration order, then the
  // merged-total row cap (the unsharded refusal boundary).
  Result<std::vector<StarMatches>> merged_or =
      MergeShardStarMatches(shard_rows);
  PPSM_ASSIGN_OR_RETURN(std::vector<StarMatches> stars,
                        std::move(merged_or));
  for (StarMatches& star : stars) {
    if (star.matches.NumMatches() > kMaxRows) star.truncated = true;
  }

  // The wire codec ships rows/columns only, so the unit kind is restored
  // from the coordinator's plan (shards matched exactly these units).
  for (size_t i = 0; i < stars.size() && i < decomposition.units.size();
       ++i) {
    stars[i].kind = decomposition.units[i].kind;
  }
  const bool estimates_aligned =
      decomposition.estimates.size() == stars.size();
  stats.stars.reserve(stars.size());
  bool star_truncated = false;
  for (size_t i = 0; i < stars.size(); ++i) {
    UnitProfile profile;
    profile.center = static_cast<uint32_t>(stars[i].center);
    profile.candidates = stars[i].num_candidates;
    profile.rows = stars[i].matches.NumMatches();
    profile.estimated_rows =
        estimates_aligned ? decomposition.estimates[i] : 0.0;
    profile.truncated = stars[i].truncated;
    profile.skipped = i < unit_skipped.size() && unit_skipped[i] != 0;
    profile.kind = UnitKindName(stars[i].kind);
    star_truncated = star_truncated || stars[i].truncated;
    stats.stars.push_back(profile);
  }
  stats.aux_build_ms = phase_stats.aux_build_ms;
  stats.aux_bytes = phase_stats.aux_bytes;
  stats.intersect_scalar =
      phase_stats.intersect_scalar.load(std::memory_order_relaxed);
  stats.intersect_galloping =
      phase_stats.intersect_galloping.load(std::memory_order_relaxed);
  stats.intersect_simd =
      phase_stats.intersect_simd.load(std::memory_order_relaxed);
  // Translate the merged global rows to Gk ids for the join.
  for (StarMatches& star : stars) {
    MatchSet translated(star.matches.arity());
    translated.ReserveAdditional(star.matches.NumMatches());
    std::vector<VertexId> row(star.matches.arity());
    for (size_t r = 0; r < star.matches.NumMatches(); ++r) {
      const auto global = star.matches.Get(r);
      for (size_t i = 0; i < global.size(); ++i) {
        row[i] = to_gk_[global[i]];
      }
      translated.Append(row);
    }
    star.matches = std::move(translated);
    stats.rs_size += star.matches.NumMatches();
  }
  stats.star_matching_ms = phase_timer.ElapsedMillis();
  if (star_truncated) {
    stats.overflowed = true;
    stats.total_ms = total_timer.ElapsedMillis();
    return Status::ResourceExhausted(
        "star match set was truncated; join would be incomplete");
  }
  if (has_deadline && SteadyClock::now() >= deadline) {
    return timeout("before join");
  }

  // Phase 3: the coordinator's result join, identical to the unsharded one.
  phase_timer.Restart();
  JoinOptions join_options;
  join_options.max_rows = kMaxRows;
  join_options.num_threads = shard_config_.num_threads;
  join_options.star_cost_estimates = decomposition.estimates;
  JoinDiagnostics join_diag;
  Result<MatchSet> rin_or = [&] {
    TraceSpan span(Tracer::Global(), "cluster.join", "query");
    span.AddArg("query_id", stats.query_id);
    span.AddArg("rs_size", static_cast<uint64_t>(stats.rs_size));
    return JoinUnitMatches(stars, avt_, qo.NumVertices(), join_options,
                           &join_diag);
  }();
  stats.join_ms = phase_timer.ElapsedMillis();
  stats.join_steps = std::move(join_diag.steps);
  stats.peak_join_rows = join_diag.peak_rows;
  if (!rin_or.ok()) {
    if (rin_or.status().code() == StatusCode::kResourceExhausted) {
      stats.overflowed = true;
    }
    stats.total_ms = total_timer.ElapsedMillis();
    return rin_or.status();
  }
  const MatchSet rin = std::move(rin_or).value();

  stats.result_rows = rin.NumMatches();
  answer.response_payload = rin.Serialize();
  stats.total_ms = total_timer.ElapsedMillis();
  metrics.queries.Increment();
  query_span.AddArg("result_rows",
                    static_cast<uint64_t>(stats.result_rows));
  query_span.AddArg("total_ms", stats.total_ms);
  answer.stats = stats;
  return answer;
}

}  // namespace ppsm
