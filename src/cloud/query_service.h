#ifndef PPSM_CLOUD_QUERY_SERVICE_H_
#define PPSM_CLOUD_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>

#include "cloud/cloud_server.h"
#include "util/status.h"

namespace ppsm {

/// Counting admission gate with a bounded wait queue. At most `max_inflight`
/// holders at a time; up to `queue_limit` further callers block in Acquire;
/// anyone beyond that is refused immediately with ResourceExhausted, and a
/// caller whose deadline has passed gets DeadlineExceeded — checked on
/// entry, at wait timeout, AND after a nominally successful wait, so an
/// expired query is never admitted and never burns a slot. Split out of
/// QueryService so the admission policy is testable without a hosted graph.
///
/// Fairness: wakeups are not strictly FIFO (condition_variable makes no
/// ordering promise), but the gate is starvation-free — every Release()
/// notifies one waiter, the fast path never barges past a non-empty queue
/// (`waiting_ == 0` guard), and a waiter that declines its wakeup because
/// its deadline expired re-notifies before leaving, so a freed slot's
/// notification is never absorbed and lost. Pinned by the TSan-covered
/// starvation stress in query_service_test.cc.
class AdmissionGate {
 public:
  AdmissionGate(size_t max_inflight, size_t queue_limit);

  /// Blocks until a slot is free (or returns the typed refusal). Every OK
  /// return must be paired with exactly one Release().
  Status Acquire(std::chrono::steady_clock::time_point deadline);
  void Release();

  size_t max_inflight() const { return max_inflight_; }
  size_t queue_limit() const { return queue_limit_; }
  /// Point-in-time occupancy (tests / gauges).
  size_t InFlight() const;
  size_t Queued() const;

 private:
  const size_t max_inflight_;
  const size_t queue_limit_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
};

/// Concurrent front door of one query handler (a single CloudServer or a
/// sharded CloudCluster — the service does not care which): admits up to
/// limits().max_inflight simultaneous Serve evaluations, queues up to
/// 2 * max_inflight more, refuses the rest (ResourceExhausted), and charges
/// queue wait against the per-query deadline (limits().query_deadline_ms).
/// Thread-safe: any number of threads may call Execute concurrently — the
/// hosted index is immutable and plan caches carry their own locks. The
/// service borrows the handler, which must outlive it.
class QueryService {
 public:
  /// Fronts any QueryHandler under the given limits.
  QueryService(const QueryHandler* handler, ServiceLimits limits);
  /// Convenience: limits come from the handler itself.
  explicit QueryService(const QueryHandler* handler);
  /// Legacy single-server constructor (CloudServer is a QueryHandler now).
  [[deprecated("construct from a QueryHandler — QueryService(&server)")]]
  explicit QueryService(const CloudServer* server);

  /// Evaluates one serialized Qo under admission control, with the deadline
  /// clock started now (queue wait counts against it).
  Result<WireAnswer> Execute(std::span<const uint8_t> qo_bytes) const;
  /// Same with an explicit absolute deadline; time_point::max() disables it.
  Result<WireAnswer> Execute(
      std::span<const uint8_t> qo_bytes,
      std::chrono::steady_clock::time_point deadline) const;

  const QueryHandler& handler() const { return *handler_; }
  const ServiceLimits& limits() const { return limits_; }
  const AdmissionGate& gate() const { return *gate_; }

 private:
  const QueryHandler* handler_;
  ServiceLimits limits_;
  // Pointer so the service stays movable (the gate holds a mutex).
  std::unique_ptr<AdmissionGate> gate_;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_QUERY_SERVICE_H_
