#include "cloud/owner_store.h"

#include <filesystem>
#include <fstream>

#include "graph/serialize.h"

namespace ppsm {

namespace {

constexpr uint32_t kMetaMagic = 0x3154454d;  // "MET1"

}  // namespace

Status SaveDataOwner(const DataOwner& owner, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory + "'");
  }
  const AttributedGraph& graph = owner.graph();
  if (graph.schema() == nullptr) {
    return Status::FailedPrecondition("owner graph has no schema");
  }
  PPSM_RETURN_IF_ERROR(WriteBytesToFile(directory + "/schema.bin",
                                        SerializeSchema(*graph.schema())));
  PPSM_RETURN_IF_ERROR(WriteBytesToFile(directory + "/graph.bin",
                                        SerializeGraphSnapshot(graph)));
  PPSM_RETURN_IF_ERROR(
      WriteBytesToFile(directory + "/lct.bin", owner.lct().Serialize()));
  PPSM_RETURN_IF_ERROR(
      WriteBytesToFile(directory + "/gk.bin",
                       SerializeGraphSnapshot(owner.kag().gk)));
  PPSM_RETURN_IF_ERROR(
      WriteBytesToFile(directory + "/avt.bin", owner.kag().avt.Serialize()));

  BinaryWriter meta;
  meta.PutU32(kMetaMagic);
  meta.PutU8(owner.IsBaselineUpload() ? 1 : 0);
  meta.PutVarint(owner.kag().num_original_vertices);
  meta.PutVarint(owner.kag().num_original_edges);
  return WriteBytesToFile(directory + "/meta.bin", meta.TakeBytes());
}

Result<DataOwner> LoadDataOwner(const std::string& directory) {
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> schema_bytes,
                        ReadBytesFromFile(directory + "/schema.bin"));
  PPSM_ASSIGN_OR_RETURN(Schema schema, DeserializeSchema(schema_bytes));
  auto shared_schema = std::make_shared<const Schema>(std::move(schema));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> graph_bytes,
                        ReadBytesFromFile(directory + "/graph.bin"));
  PPSM_ASSIGN_OR_RETURN(AttributedGraph graph,
                        DeserializeGraphSnapshot(graph_bytes, shared_schema));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> lct_bytes,
                        ReadBytesFromFile(directory + "/lct.bin"));
  PPSM_ASSIGN_OR_RETURN(Lct lct,
                        Lct::Deserialize(lct_bytes, *shared_schema));

  KAutomorphicGraph kag;
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> gk_bytes,
                        ReadBytesFromFile(directory + "/gk.bin"));
  PPSM_ASSIGN_OR_RETURN(
      kag.gk, DeserializeGraphSnapshot(gk_bytes, /*schema=*/nullptr));
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> avt_bytes,
                        ReadBytesFromFile(directory + "/avt.bin"));
  PPSM_ASSIGN_OR_RETURN(kag.avt, Avt::Deserialize(avt_bytes));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> meta_bytes,
                        ReadBytesFromFile(directory + "/meta.bin"));
  BinaryReader meta(meta_bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, meta.GetU32());
  if (magic != kMetaMagic) {
    return Status::InvalidArgument("bad owner-store meta magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint8_t baseline, meta.GetU8());
  PPSM_ASSIGN_OR_RETURN(kag.num_original_vertices, meta.GetVarint());
  PPSM_ASSIGN_OR_RETURN(kag.num_original_edges, meta.GetVarint());

  return DataOwner::Restore(std::move(graph), std::move(shared_schema),
                            std::move(lct), std::move(kag), baseline != 0);
}

}  // namespace ppsm
