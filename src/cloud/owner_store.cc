#include "cloud/owner_store.h"

#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>

#include "graph/serialize.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace ppsm {

namespace {

constexpr uint32_t kMetaMagic = 0x3154454d;   // "MET1"
constexpr uint32_t kShardsMagic = 0x314d4853;  // "SHM1"

std::string ShardFileName(const std::string& directory, size_t shard) {
  return directory + "/shard_" + std::to_string(shard) + ".bin";
}

}  // namespace

Status SaveDataOwner(const DataOwner& owner, const std::string& directory,
                     size_t num_threads) {
  PPSM_TRACE_SPAN_CAT("setup.snapshot_save", "setup");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory + "'");
  }
  const AttributedGraph& graph = owner.graph();
  if (graph.schema() == nullptr) {
    return Status::FailedPrecondition("owner graph has no schema");
  }

  // Each artifact's payload is an independent pure function of the owner:
  // serialize them concurrently, then write in a fixed order so failures
  // surface deterministically.
  struct Artifact {
    const char* file;
    std::function<std::vector<uint8_t>()> serialize;
    std::vector<uint8_t> bytes;
  };
  Artifact artifacts[] = {
      {"schema.bin", [&] { return SerializeSchema(*graph.schema()); }, {}},
      {"graph.bin", [&] { return SerializeGraphSnapshot(graph); }, {}},
      {"lct.bin", [&] { return owner.lct().Serialize(); }, {}},
      {"gk.bin", [&] { return SerializeGraphSnapshot(owner.kag().gk); }, {}},
      {"avt.bin", [&] { return owner.kag().avt.Serialize(); }, {}},
      {"meta.bin",
       [&] {
         BinaryWriter meta;
         meta.PutU32(kMetaMagic);
         meta.PutU8(owner.IsBaselineUpload() ? 1 : 0);
         meta.PutVarint(owner.kag().num_original_vertices);
         meta.PutVarint(owner.kag().num_original_edges);
         // Optional trailer: the Go radius, only when it deviates from the
         // default — radius-1 snapshots stay byte-identical to older ones,
         // and older snapshots (no trailer) load as radius 1.
         if (owner.go_hops() > 1) meta.PutVarint(owner.go_hops());
         return meta.TakeBytes();
       },
       {}},
  };
  ParallelFor(num_threads, std::size(artifacts),
              [&](size_t i) { artifacts[i].bytes = artifacts[i].serialize(); });
  for (Artifact& artifact : artifacts) {
    PPSM_RETURN_IF_ERROR(WriteBytesToFile(directory + "/" + artifact.file,
                                          std::move(artifact.bytes)));
  }
  return Status::OK();
}

Result<DataOwner> LoadDataOwner(const std::string& directory) {
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> schema_bytes,
                        ReadBytesFromFile(directory + "/schema.bin"));
  PPSM_ASSIGN_OR_RETURN(Schema schema, DeserializeSchema(schema_bytes));
  auto shared_schema = std::make_shared<const Schema>(std::move(schema));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> graph_bytes,
                        ReadBytesFromFile(directory + "/graph.bin"));
  PPSM_ASSIGN_OR_RETURN(AttributedGraph graph,
                        DeserializeGraphSnapshot(graph_bytes, shared_schema));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> lct_bytes,
                        ReadBytesFromFile(directory + "/lct.bin"));
  PPSM_ASSIGN_OR_RETURN(Lct lct,
                        Lct::Deserialize(lct_bytes, *shared_schema));

  KAutomorphicGraph kag;
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> gk_bytes,
                        ReadBytesFromFile(directory + "/gk.bin"));
  PPSM_ASSIGN_OR_RETURN(
      kag.gk, DeserializeGraphSnapshot(gk_bytes, /*schema=*/nullptr));
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> avt_bytes,
                        ReadBytesFromFile(directory + "/avt.bin"));
  PPSM_ASSIGN_OR_RETURN(kag.avt, Avt::Deserialize(avt_bytes));

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> meta_bytes,
                        ReadBytesFromFile(directory + "/meta.bin"));
  BinaryReader meta(meta_bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, meta.GetU32());
  if (magic != kMetaMagic) {
    return Status::InvalidArgument("bad owner-store meta magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint8_t baseline, meta.GetU8());
  PPSM_ASSIGN_OR_RETURN(kag.num_original_vertices, meta.GetVarint());
  PPSM_ASSIGN_OR_RETURN(kag.num_original_edges, meta.GetVarint());
  uint32_t go_hops = 1;  // Radius-1 snapshots carry no trailer.
  if (meta.remaining() > 0) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t hops, meta.GetVarint());
    if (hops < 2 || hops > UINT32_MAX) {
      return Status::InvalidArgument("bad owner-store Go radius");
    }
    go_hops = static_cast<uint32_t>(hops);
  }

  return DataOwner::Restore(std::move(graph), std::move(shared_schema),
                            std::move(lct), std::move(kag), baseline != 0,
                            go_hops);
}

Status SaveShardUploads(const ShardingPlan& plan,
                        const std::string& directory) {
  PPSM_TRACE_SPAN_CAT("setup.shard_save", "setup");
  if (plan.shards.empty()) {
    return Status::InvalidArgument("sharding plan has no shards");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory + "'");
  }

  BinaryWriter meta;
  meta.PutU32(kShardsMagic);
  meta.PutVarint(plan.shards.size());
  const std::vector<uint8_t> partitioning = plan.partitioning.Serialize();
  meta.PutVarint(partitioning.size());
  meta.PutBytes(partitioning);
  PPSM_RETURN_IF_ERROR(
      WriteBytesToFile(directory + "/shards_meta.bin", meta.TakeBytes()));

  for (size_t i = 0; i < plan.shards.size(); ++i) {
    PPSM_RETURN_IF_ERROR(WriteBytesToFile(ShardFileName(directory, i),
                                          plan.shards[i].Serialize()));
  }
  return Status::OK();
}

Result<ShardingPlan> LoadShardUploads(const std::string& directory) {
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> meta_bytes,
                        ReadBytesFromFile(directory + "/shards_meta.bin"));
  BinaryReader meta(meta_bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, meta.GetU32());
  if (magic != kShardsMagic) {
    return Status::InvalidArgument("bad shard-store meta magic");
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_shards, meta.GetVarint());
  if (num_shards == 0) {
    return Status::InvalidArgument("shard-store manifest lists no shards");
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t partitioning_size, meta.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const std::span<const uint8_t> partitioning_bytes,
                        meta.GetBytes(partitioning_size));

  ShardingPlan plan;
  PPSM_ASSIGN_OR_RETURN(plan.partitioning,
                        Partitioning::Deserialize(partitioning_bytes));
  if (plan.partitioning.num_parts != num_shards) {
    return Status::InvalidArgument(
        "shard-store manifest disagrees with its partitioning on the shard "
        "count");
  }
  plan.shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> shard_bytes,
                          ReadBytesFromFile(ShardFileName(directory, i)));
    PPSM_ASSIGN_OR_RETURN(ShardUpload shard,
                          ShardUpload::Deserialize(shard_bytes));
    if (shard.shard != i || shard.num_shards != num_shards) {
      return Status::InvalidArgument(
          "shard file " + std::to_string(i) +
          " does not belong to this manifest");
    }
    plan.shards.push_back(std::move(shard));
  }
  return plan;
}

}  // namespace ppsm
