#include "cloud/channel.h"

namespace ppsm {

double SimulatedChannel::Transfer(size_t bytes,
                                  const std::string& description) {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (config_.bandwidth_mbps * 1e6);
  const double millis = config_.latency_ms + seconds * 1e3;
  total_bytes_ += bytes;
  total_millis_ += millis;
  log_.push_back(Record{description, bytes, millis});
  return millis;
}

void SimulatedChannel::Reset() {
  total_bytes_ = 0;
  total_millis_ = 0.0;
  log_.clear();
}

}  // namespace ppsm
