#include "cloud/channel.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppsm {

namespace {

struct ChannelMetrics {
  MetricsRegistry::Counter messages;
  MetricsRegistry::Counter bytes;
  MetricsRegistry::Counter log_dropped;
  MetricsRegistry::Histogram message_bytes;
  MetricsRegistry::Histogram transfer_ms;

  static const ChannelMetrics& Get() {
    static const ChannelMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      ChannelMetrics metrics;
      metrics.messages = r.counter("ppsm_network_messages_total",
                                   "Messages over the simulated link");
      metrics.bytes = r.counter("ppsm_network_bytes_total",
                                "Payload bytes over the simulated link");
      metrics.log_dropped =
          r.counter("ppsm_channel_log_dropped_total",
                    "Channel log records evicted by the max_log_records cap");
      metrics.message_bytes =
          r.histogram("ppsm_network_message_bytes", DefaultSizeBuckets(),
                      "Per-message payload size");
      metrics.transfer_ms =
          r.histogram("ppsm_network_transfer_ms", DefaultLatencyBucketsMs(),
                      "Per-message simulated transfer time");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

Status ValidateChannelConfig(const ChannelConfig& config) {
  if (!std::isfinite(config.bandwidth_mbps) || config.bandwidth_mbps <= 0.0) {
    return Status::InvalidArgument(
        "channel bandwidth_mbps must be finite and > 0, got " +
        std::to_string(config.bandwidth_mbps));
  }
  if (!std::isfinite(config.latency_ms) || config.latency_ms < 0.0) {
    return Status::InvalidArgument(
        "channel latency_ms must be finite and >= 0, got " +
        std::to_string(config.latency_ms));
  }
  return Status::OK();
}

SimulatedChannel::SimulatedChannel(ChannelConfig config)
    : config_(config), mu_(std::make_unique<std::mutex>()) {
  const Status valid = ValidateChannelConfig(config_);
  if (!valid.ok()) {
    PPSM_LOG(Warning) << "invalid channel config (" << valid.message()
                      << "); falling back to the default link";
    const size_t max_log_records = config_.max_log_records;
    config_ = ChannelConfig{};
    config_.max_log_records = max_log_records;
  }
}

Result<SimulatedChannel> SimulatedChannel::Create(ChannelConfig config) {
  PPSM_RETURN_IF_ERROR(ValidateChannelConfig(config));
  return SimulatedChannel(config);
}

double SimulatedChannel::Transfer(size_t bytes,
                                  const std::string& description) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / (config_.bandwidth_mbps * 1e6);
  const double millis = config_.latency_ms + seconds * 1e3;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    total_bytes_ += bytes;
    total_millis_ += millis;
    ++num_messages_;
    if (config_.max_log_records > 0) {
      while (log_.size() >= config_.max_log_records) {
        log_.pop_front();
        ++dropped;
      }
      num_dropped_records_ += dropped;
      log_.push_back(Record{description, bytes, millis});
    }
  }
  const ChannelMetrics& metrics = ChannelMetrics::Get();
  if (dropped > 0) metrics.log_dropped.Increment(dropped);
  metrics.messages.Increment();
  metrics.bytes.Increment(bytes);
  metrics.message_bytes.Observe(static_cast<double>(bytes));
  metrics.transfer_ms.Observe(millis);
  Tracer::Global().Instant("channel.transfer: " + description, "network");
  return millis;
}

void SimulatedChannel::Reset() {
  std::lock_guard<std::mutex> lock(*mu_);
  total_bytes_ = 0;
  total_millis_ = 0.0;
  num_messages_ = 0;
  num_dropped_records_ = 0;
  log_.clear();
}

}  // namespace ppsm
