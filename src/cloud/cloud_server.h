#ifndef PPSM_CLOUD_CLOUD_SERVER_H_
#define PPSM_CLOUD_CLOUD_SERVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/messages.h"
#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "match/index.h"
#include "match/statistics.h"
#include "util/status.h"

namespace ppsm {

/// Timing/size breakdown of one query evaluation in the cloud (the columns
/// of the paper's Figs. 18, 19, 22).
struct CloudQueryStats {
  double decomposition_ms = 0.0;
  double star_matching_ms = 0.0;
  double join_ms = 0.0;
  double total_ms = 0.0;
  size_t num_stars = 0;
  /// |RS| = total star matches across the decomposition (paper Fig. 19).
  size_t rs_size = 0;
  /// Rows returned (|Rin| for the optimized path, |R(Qo,Gk)| for BAS).
  size_t result_rows = 0;
};

/// The honest-but-curious cloud. It only ever sees anonymized artifacts:
/// the upload package (Go+AVT, or Gk for the baseline) and per-query Qo
/// graphs whose labels are opaque group ids. Query evaluation follows
/// §4.2.1: cost-model query decomposition (exact ILP), VBV/LBV-indexed star
/// matching, then the result join. On the optimized path the join expands
/// star matches with the automorphic functions and returns Rin; the baseline
/// path hosts all of Gk, joins without expansion, and returns R(Qo,Gk).
class CloudServer {
 public:
  /// Ingests a serialized upload package and builds the offline index.
  static Result<CloudServer> Host(std::span<const uint8_t> package_bytes);
  /// Same, from an in-memory package (tests).
  static Result<CloudServer> Host(UploadPackage package);

  /// Evaluates a serialized Qo. `response_payload` is the serialized match
  /// set that would travel back to the client.
  struct Answer {
    std::vector<uint8_t> response_payload;
    CloudQueryStats stats;
  };
  Result<Answer> AnswerQuery(std::span<const uint8_t> qo_bytes) const;

  /// Worker threads for star matching (paper §4.2.1 notes the star phase
  /// parallelizes; stars are independent). Default 1 (serial).
  void SetNumThreads(size_t num_threads) {
    num_threads_ = num_threads == 0 ? 1 : num_threads;
  }
  size_t num_threads() const { return num_threads_; }

  bool IsBaseline() const { return baseline_; }
  uint32_t k() const { return avt_.k(); }
  size_t IndexMemoryBytes() const { return index_.MemoryBytes(); }
  double IndexBuildMillis() const { return index_build_ms_; }
  /// Number of vertices the index treats as candidate star centers.
  size_t NumCenters() const { return index_.num_centers(); }
  /// Number of edges stored in the hosted graph (|E(Go)| or |E(Gk)|).
  size_t HostedEdges() const { return data_.NumEdges(); }
  const GkStatistics& statistics() const { return stats_; }

 private:
  CloudServer() = default;

  bool baseline_ = false;
  AttributedGraph data_;           // Go (compact ids) or Gk.
  std::vector<VertexId> to_gk_;    // Identity for baseline.
  Avt avt_;                        // Identity table for baseline.
  CloudIndex index_;
  GkStatistics stats_;
  double index_build_ms_ = 0.0;
  size_t num_threads_ = 1;
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CLOUD_SERVER_H_
