#ifndef PPSM_CLOUD_CLOUD_SERVER_H_
#define PPSM_CLOUD_CLOUD_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cloud/messages.h"
#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "match/index.h"
#include "match/statistics.h"
#include "obs/query_profile.h"
#include "util/status.h"

namespace ppsm {

/// Serving-side configuration, fixed at Host() time. Replaces the old
/// mutable SetNumThreads setter so a hosted server is immutable and every
/// AnswerQuery is safe to run concurrently.
struct CloudConfig {
  /// Worker threads for the star-matching phase of one query (paper §4.2.1:
  /// stars are independent). Drawn from the shared ThreadPool; 0 clamps
  /// to 1 (serial).
  size_t num_threads = 1;
  /// Capacity of the decomposition plan cache (LRU over canonical Qo
  /// signatures; see match/decomposition.h QoSignature). 0 disables caching.
  size_t plan_cache_entries = 128;
  /// QueryService admission bound: queries executing simultaneously. Further
  /// arrivals wait in a queue bounded at 2 * max_inflight, beyond which they
  /// are refused with ResourceExhausted. Must be >= 1 (0 clamps to 1).
  size_t max_inflight = 16;
  /// Per-query wall-clock budget, measured from admission (queue wait
  /// included). Expiry surfaces as Status::DeadlineExceeded. 0 = no deadline.
  uint64_t query_deadline_ms = 0;
};

/// Timing/size breakdown of one query evaluation in the cloud (the columns
/// of the paper's Figs. 18, 19, 22), plus the per-phase observability the
/// flight recorder files (DESIGN.md "Query observability"). Filled on
/// FAILED queries too via QueryContext::stats — a DeadlineExceeded reply
/// still reports the phases that ran and where the clock expired.
struct CloudQueryStats {
  /// Stable id minted at admission (or by AnswerQuery itself for direct
  /// calls); never 0 on a reply. Joins the reply to span args and the
  /// flight-recorder record.
  uint64_t query_id = 0;
  /// Admission-queue wait, as reported by the QueryService (0 for direct
  /// AnswerQuery calls).
  double queue_wait_ms = 0.0;
  double decomposition_ms = 0.0;
  double star_matching_ms = 0.0;
  double join_ms = 0.0;
  double total_ms = 0.0;
  size_t num_stars = 0;
  /// |RS| = total star matches across the decomposition (paper Fig. 19).
  size_t rs_size = 0;
  /// Rows returned (|Rin| for the optimized path, |R(Qo,Gk)| for BAS).
  size_t result_rows = 0;
  /// Peak intermediate row count across join steps.
  size_t peak_join_rows = 0;
  /// True when the decomposition came out of the plan cache (ILP skipped).
  bool plan_cache_hit = false;
  /// True when the per-phase row cap fired (star matching or a join step);
  /// the query then failed with ResourceExhausted.
  bool overflowed = false;
  /// Phase name at which the deadline fired ("on admission", "after
  /// decomposition", ...); empty when the query did not time out.
  std::string timed_out_phase;
  /// Per-star candidate/row counts with the §5.1 estimates (the cost-model
  /// calibration inputs). Filled once star matching ran.
  std::vector<StarProfile> stars;
  /// Per-join-step estimated-vs-actual trace (JoinDiagnostics::steps).
  std::vector<JoinStepProfile> join_steps;
};

/// Lifts a reply's stats into the flight-recorder record. Status, byte
/// counts, and the post-cloud times (network/client/total) are the caller's
/// to fill — the cloud cannot know them.
QueryProfile ToQueryProfile(const CloudQueryStats& stats);

/// Query-scoped context threaded from admission (QueryService) through
/// AnswerQuery. Everything is optional: a default-constructed context means
/// "direct call, no admission metadata" — AnswerQuery then mints its own
/// query id and the deadline check is disabled.
struct QueryContext {
  /// Id minted at admission; 0 = AnswerQuery mints one itself.
  uint64_t query_id = 0;
  /// Time spent in the admission queue, copied into the reply stats.
  double queue_wait_ms = 0.0;
  /// Absolute evaluation deadline; time_point::max() disables the check.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// When non-null, receives the query's CloudQueryStats on EVERY return
  /// path — success and failure alike. Result<Answer> cannot carry stats on
  /// an error, and the failed queries are exactly the ones the flight
  /// recorder must capture with their partial phase accounting.
  CloudQueryStats* stats = nullptr;
};

/// Point-in-time plan-cache accounting for one server (the global
/// ppsm_cloud_plan_cache_* metrics aggregate across servers).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// The honest-but-curious cloud. It only ever sees anonymized artifacts:
/// the upload package (Go+AVT, or Gk for the baseline) and per-query Qo
/// graphs whose labels are opaque group ids. Query evaluation follows
/// §4.2.1: cost-model query decomposition (exact ILP, memoized in the plan
/// cache), VBV/LBV-indexed star matching, then the result join. On the
/// optimized path the join expands star matches with the automorphic
/// functions and returns Rin; the baseline path hosts all of Gk, joins
/// without expansion, and returns R(Qo,Gk).
///
/// Thread-safety: a hosted server is immutable — AnswerQuery is const and
/// any number of threads may call it concurrently (the plan cache is the
/// only shared mutable state and sits behind its own mutex). Concurrent
/// admission control and batching live in cloud/query_service.h.
class CloudServer {
 public:
  // Movable, not copyable. Out-of-line because PlanCache is incomplete here.
  ~CloudServer();
  CloudServer(CloudServer&&) noexcept;
  CloudServer& operator=(CloudServer&&) noexcept;

  /// Ingests a serialized upload package and builds the offline index.
  static Result<CloudServer> Host(std::span<const uint8_t> package_bytes,
                                  const CloudConfig& config = {});
  /// Same, from an in-memory package (tests).
  static Result<CloudServer> Host(UploadPackage package,
                                  const CloudConfig& config = {});

  /// Evaluates a serialized Qo. `response_payload` is the serialized match
  /// set that would travel back to the client.
  struct Answer {
    std::vector<uint8_t> response_payload;
    CloudQueryStats stats;
  };
  /// Thread-safe; applies config().query_deadline_ms from call entry.
  Result<Answer> AnswerQuery(std::span<const uint8_t> qo_bytes) const;
  /// Same with an explicit absolute deadline (steady clock). The deadline is
  /// checked between phases and per star, so an expired query stops within
  /// one star-match of the expiry instead of running to completion.
  /// time_point::max() disables the check.
  Result<Answer> AnswerQuery(
      std::span<const uint8_t> qo_bytes,
      std::chrono::steady_clock::time_point deadline) const;
  /// Full-context variant: admission metadata in, per-phase stats out on
  /// every return path (ctx.stats, when set, is filled even on failure).
  Result<Answer> AnswerQuery(std::span<const uint8_t> qo_bytes,
                             const QueryContext& ctx) const;

  const CloudConfig& config() const { return config_; }
  /// Star-matching workers per query (config().num_threads, clamped >= 1).
  size_t num_threads() const { return config_.num_threads; }

  /// Hit/miss/occupancy counters of this server's plan cache.
  PlanCacheStats plan_cache_stats() const;

  bool IsBaseline() const { return baseline_; }
  uint32_t k() const { return avt_.k(); }
  size_t IndexMemoryBytes() const { return index_.MemoryBytes(); }
  double IndexBuildMillis() const { return index_build_ms_; }
  /// Number of vertices the index treats as candidate star centers.
  size_t NumCenters() const { return index_.num_centers(); }
  /// Number of edges stored in the hosted graph (|E(Go)| or |E(Gk)|).
  size_t HostedEdges() const { return data_.NumEdges(); }
  const GkStatistics& statistics() const { return stats_; }

 private:
  struct PlanCache;  // Mutex + LRU, behind a pointer so the server moves.

  CloudServer() = default;

  bool baseline_ = false;
  AttributedGraph data_;           // Go (compact ids) or Gk.
  std::vector<VertexId> to_gk_;    // Identity for baseline.
  Avt avt_;                        // Identity table for baseline.
  CloudIndex index_;
  GkStatistics stats_;
  double index_build_ms_ = 0.0;
  CloudConfig config_;
  std::unique_ptr<PlanCache> plan_cache_;  // Null when caching disabled.
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CLOUD_SERVER_H_
