#ifndef PPSM_CLOUD_CLOUD_SERVER_H_
#define PPSM_CLOUD_CLOUD_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cloud/messages.h"
#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "match/index.h"
#include "match/statistics.h"
#include "obs/query_profile.h"
#include "query/query_api.h"
#include "util/intersect.h"
#include "util/status.h"

namespace ppsm {

/// Per-shard serving knobs: what one CloudServer (one slice of the hosted
/// graph) needs to evaluate its share of a query. Deployment-scoped knobs
/// (shard count, admission, deadlines) live in ClusterConfig.
struct ShardConfig {
  /// Worker threads for the star-matching phase of one query (paper §4.2.1:
  /// stars are independent). Drawn from the shared ThreadPool; 0 clamps
  /// to 1 (serial).
  size_t num_threads = 1;
  /// Capacity of the decomposition plan cache (LRU over canonical Qo
  /// signatures; see match/decomposition.h QoSignature). 0 disables caching.
  size_t plan_cache_entries = 128;
  /// Cap on the BFS depth of decomposition units the planner may pick
  /// (match/query_unit.h). 0 = use the hosted graph's full hop radius; 1 =
  /// star-only (the paper's §4.2.1 decomposition, byte-identical plans and
  /// answers). Values above the hosted radius are clamped to it — deeper
  /// units could not be matched completely on this slice.
  uint32_t max_unit_depth = 0;
  /// Unit matching via the per-query auxiliary graph + set-intersection
  /// kernels (match/aux_graph.h, util/intersect.h). Rows are byte-identical
  /// either way; off is the A/B reference path.
  bool aux_graph = true;
  /// Intersection kernel for the aux path (kAuto = §5.1 cost model per
  /// step). Output-neutral; exposed for A/B and calibration runs.
  IntersectKernel intersect_kernel = IntersectKernel::kAuto;
};

/// Deployment-scoped serving knobs: how many shards host the graph and how
/// the fronting QueryService admits traffic.
struct ClusterConfig {
  /// Number of CloudServer shards hosting slices of Go. 1 = the classic
  /// unsharded deployment (0 clamps to 1).
  uint32_t num_shards = 1;
  /// Index of the shard this config addresses in a multi-process deployment;
  /// the single-process CloudCluster hosts all shards itself and ignores it.
  uint32_t shard = 0;
  /// QueryService admission bound: queries executing simultaneously. Further
  /// arrivals wait in a queue bounded at 2 * max_inflight, beyond which they
  /// are refused with ResourceExhausted. Must be >= 1 (0 clamps to 1).
  size_t max_inflight = 16;
  /// Per-query wall-clock budget, measured from admission (queue wait
  /// included). Expiry surfaces as Status::DeadlineExceeded. 0 = no deadline.
  uint64_t query_deadline_ms = 0;
  /// Seed of the partitioner run that assigns B1 vertices to shards
  /// (deterministic: same seed, same assignment). Ignored when num_shards=1.
  uint64_t partition_seed = 7;
};

/// Legacy flat view of (ShardConfig x ClusterConfig), kept so existing
/// tests/benches compile unchanged: the pre-cluster single-server world
/// needed no distinction between per-shard and deployment knobs. Convert
/// with ToShardConfig/ToClusterConfig/ToCloudConfig.
struct CloudConfig {
  size_t num_threads = 1;        // -> ShardConfig::num_threads.
  size_t plan_cache_entries = 128;  // -> ShardConfig::plan_cache_entries.
  size_t max_inflight = 16;      // -> ClusterConfig::max_inflight.
  uint64_t query_deadline_ms = 0;  // -> ClusterConfig::query_deadline_ms.
  uint32_t max_unit_depth = 0;   // -> ShardConfig::max_unit_depth.
  bool aux_graph = true;         // -> ShardConfig::aux_graph.
  IntersectKernel intersect_kernel =  // -> ShardConfig::intersect_kernel.
      IntersectKernel::kAuto;
};

/// Converters between the legacy flat config and the split pair.
ShardConfig ToShardConfig(const CloudConfig& config);
ClusterConfig ToClusterConfig(const CloudConfig& config);
CloudConfig ToCloudConfig(const ShardConfig& shard,
                          const ClusterConfig& cluster);

/// Point-in-time plan-cache accounting for one server (the global
/// ppsm_cloud_plan_cache_* metrics aggregate across servers).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// The honest-but-curious cloud. It only ever sees anonymized artifacts:
/// the upload package (Go+AVT, or Gk for the baseline) and per-query Qo
/// graphs whose labels are opaque group ids. Query evaluation follows
/// §4.2.1: cost-model query decomposition (exact ILP, memoized in the plan
/// cache), VBV/LBV-indexed star matching, then the result join. On the
/// optimized path the join expands star matches with the automorphic
/// functions and returns Rin; the baseline path hosts all of Gk, joins
/// without expansion, and returns R(Qo,Gk).
///
/// Thread-safety: a hosted server is immutable — Serve is const and any
/// number of threads may call it concurrently (the plan cache is the only
/// shared mutable state and sits behind its own mutex). Concurrent
/// admission control and batching live in cloud/query_service.h.
class CloudServer : public QueryHandler {
 public:
  // Movable, not copyable. Out-of-line because PlanCache is incomplete here.
  ~CloudServer() override;
  CloudServer(CloudServer&&) noexcept;
  CloudServer& operator=(CloudServer&&) noexcept;

  /// Ingests a serialized upload package and builds the offline index.
  static Result<CloudServer> Host(std::span<const uint8_t> package_bytes,
                                  const CloudConfig& config = {});
  /// Same, from an in-memory package (tests).
  static Result<CloudServer> Host(UploadPackage package,
                                  const CloudConfig& config = {});
  /// Hosts one shard's slice of Go (ShardUpload::package). The slice's B1
  /// prefix is smaller than the full AVT, so the full-package consistency
  /// check num_b1 == avt.num_rows is relaxed to num_b1 <= avt.num_rows;
  /// everything else (index build, query evaluation) is the regular path.
  static Result<CloudServer> HostSlice(UploadPackage package,
                                       const ShardConfig& config);

  /// Legacy alias for the wire-level reply (now query/query_api.h).
  using Answer = WireAnswer;

  /// The one query entry point (QueryHandler): evaluates a serialized Qo
  /// under the given context. ctx.stats, when set, is filled on every
  /// return path — failure included.
  Result<WireAnswer> Serve(std::span<const uint8_t> qo_bytes,
                           const QueryContext& ctx = {}) const override;
  ServiceLimits limits() const override {
    return {config_.max_inflight, config_.query_deadline_ms};
  }

  /// Legacy entry points, collapsed onto Serve().
  [[deprecated("use Serve(qo_bytes) — one entry point for all callers")]]
  Result<WireAnswer> AnswerQuery(std::span<const uint8_t> qo_bytes) const;
  [[deprecated("use Serve(qo_bytes, ctx) with QueryContext::deadline")]]
  Result<WireAnswer> AnswerQuery(
      std::span<const uint8_t> qo_bytes,
      std::chrono::steady_clock::time_point deadline) const;
  [[deprecated("use Serve(qo_bytes, ctx)")]]
  Result<WireAnswer> AnswerQuery(std::span<const uint8_t> qo_bytes,
                                 const QueryContext& ctx) const;

  const CloudConfig& config() const { return config_; }
  /// Star-matching workers per query (config().num_threads, clamped >= 1).
  size_t num_threads() const { return config_.num_threads; }

  /// Hit/miss/occupancy counters of this server's plan cache.
  PlanCacheStats plan_cache_stats() const;

  bool IsBaseline() const { return baseline_; }
  uint32_t k() const { return avt_.k(); }
  /// Hop radius of the hosted Go (1 for the paper's Go and the baseline).
  uint32_t hops() const { return hops_; }
  /// Deepest decomposition unit the planner may pick on this server: the
  /// hosted radius, tightened by config.max_unit_depth when set.
  uint32_t EffectiveUnitDepth() const {
    uint32_t depth = hops_;
    if (config_.max_unit_depth > 0 && config_.max_unit_depth < depth) {
      depth = config_.max_unit_depth;
    }
    return depth;
  }
  size_t IndexMemoryBytes() const { return index_.MemoryBytes(); }
  double IndexBuildMillis() const { return index_build_ms_; }
  /// Number of vertices the index treats as candidate star centers.
  size_t NumCenters() const { return index_.num_centers(); }
  /// Number of edges stored in the hosted graph (|E(Go)| or |E(Gk)|).
  size_t HostedEdges() const { return data_.NumEdges(); }
  const GkStatistics& statistics() const { return stats_; }
  /// Read access for the cluster coordinator (shard-local planning + the
  /// slice-to-global row translation run outside this server).
  const AttributedGraph& data() const { return data_; }
  const CloudIndex& index() const { return index_; }
  const Avt& avt() const { return avt_; }
  const std::vector<VertexId>& to_gk() const { return to_gk_; }

 private:
  struct PlanCache;  // Mutex + LRU, behind a pointer so the server moves.

  CloudServer() = default;

  static Result<CloudServer> HostImpl(UploadPackage package,
                                      const CloudConfig& config,
                                      bool slice);

  bool baseline_ = false;
  uint32_t hops_ = 1;              // Hop radius of the hosted Go.
  AttributedGraph data_;           // Go (compact ids) or Gk.
  std::vector<VertexId> to_gk_;    // Identity for baseline.
  Avt avt_;                        // Identity table for baseline.
  CloudIndex index_;
  GkStatistics stats_;
  double index_build_ms_ = 0.0;
  CloudConfig config_;
  std::unique_ptr<PlanCache> plan_cache_;  // Null when caching disabled.
};

}  // namespace ppsm

#endif  // PPSM_CLOUD_CLOUD_SERVER_H_
