#include "core/ppsm_system.h"

#include <algorithm>
#include <fstream>

#include "cloud/owner_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/timer.h"

namespace ppsm {

namespace {

/// End-to-end metrics (the paper Fig. 22 decomposition: cloud + network +
/// client). Cloud-internal and client-internal phases record their own
/// metrics in cloud_server.cc / data_owner.cc.
struct SystemMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter queries_failed;
  MetricsRegistry::Histogram total_ms;
  MetricsRegistry::Histogram network_ms;
  MetricsRegistry::Histogram anonymize_ms;
  MetricsRegistry::Gauge upload_ms;

  static const SystemMetrics& Get() {
    static const SystemMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SystemMetrics metrics;
      metrics.queries =
          r.counter("ppsm_queries_total", "End-to-end queries attempted");
      metrics.queries_failed =
          r.counter("ppsm_queries_failed_total",
                    "Queries refused, expired or errored end to end");
      metrics.total_ms =
          r.histogram("ppsm_query_total_ms", DefaultLatencyBucketsMs(),
                      "End-to-end query time (cloud + network + client)");
      metrics.network_ms =
          r.histogram("ppsm_query_network_ms", DefaultLatencyBucketsMs(),
                      "Simulated request + response transfer per query");
      metrics.anonymize_ms =
          r.histogram("ppsm_query_anonymize_ms", DefaultLatencyBucketsMs(),
                      "Q -> Qo anonymization + serialization time");
      metrics.upload_ms =
          r.gauge("ppsm_setup_upload_transfer_ms",
                  "Simulated one-time upload transfer time");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kEff:
      return "EFF";
    case Method::kRan:
      return "RAN";
    case Method::kFsim:
      return "FSIM";
    case Method::kBas:
      return "BAS";
  }
  return "?";
}

Result<PpsmSystem> PpsmSystem::Setup(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     const SystemConfig& config) {
  DataOwnerOptions options;
  options.k = config.k;
  options.grouping.theta = config.theta;
  options.grouping.seed = config.seed;
  options.kauto = config.kauto;
  options.setup_threads = config.setup_threads;
  switch (config.method) {
    case Method::kEff:
      options.strategy = GroupingStrategy::kCostModel;
      break;
    case Method::kRan:
      options.strategy = GroupingStrategy::kRandom;
      break;
    case Method::kFsim:
      options.strategy = GroupingStrategy::kFrequencySimilar;
      break;
    case Method::kBas:
      options.strategy = GroupingStrategy::kCostModel;
      options.baseline_upload = true;
      break;
  }

  PPSM_TRACE_SPAN_CAT("setup", "setup");
  PPSM_ASSIGN_OR_RETURN(
      DataOwner owner,
      DataOwner::Create(std::move(graph), std::move(schema), options));
  return HostFromOwner(std::make_unique<DataOwner>(std::move(owner)), config);
}

Result<PpsmSystem> PpsmSystem::HostFromOwner(std::unique_ptr<DataOwner> owner,
                                             const SystemConfig& config) {
  PpsmSystem system;
  system.config_ = config;
  PPSM_ASSIGN_OR_RETURN(system.channel_,
                        SimulatedChannel::Create(config.channel));
  system.owner_ = std::move(owner);

  system.upload_ms_ = system.channel_.Transfer(
      system.owner_->upload_bytes().size(), "upload");
  SystemMetrics::Get().upload_ms.Set(system.upload_ms_);

  {
    PPSM_TRACE_SPAN_CAT("setup.cloud_host", "setup");
    PPSM_ASSIGN_OR_RETURN(
        CloudServer cloud,
        CloudServer::Host(system.owner_->upload_bytes(), config.cloud));
    system.cloud_ = std::make_unique<CloudServer>(std::move(cloud));
  }
  system.service_ = std::make_unique<QueryService>(system.cloud_.get());
  return system;
}

Status PpsmSystem::SaveSnapshot(const std::string& directory) const {
  return SaveDataOwner(*owner_, directory, config_.setup_threads);
}

Result<PpsmSystem> PpsmSystem::LoadSnapshot(const std::string& directory,
                                            const SystemConfig& config) {
  PPSM_TRACE_SPAN_CAT("setup.load_snapshot", "setup");
  PPSM_ASSIGN_OR_RETURN(DataOwner owner, LoadDataOwner(directory));
  SystemConfig effective = config;
  effective.k = owner.k();
  if (owner.IsBaselineUpload()) effective.method = Method::kBas;
  return HostFromOwner(std::make_unique<DataOwner>(std::move(owner)),
                       effective);
}

Result<QueryOutcome> PpsmSystem::Query(const AttributedGraph& query) const {
  // Attempts are counted up front so refusals and failures are not
  // invisible in the exported metrics (a dashboard reading only successes
  // under-reports load and hides error storms entirely).
  const SystemMetrics& metrics = SystemMetrics::Get();
  metrics.queries.Increment();
  Result<QueryOutcome> outcome = QueryImpl(query);
  if (!outcome.ok()) metrics.queries_failed.Increment();
  return outcome;
}

Result<QueryOutcome> PpsmSystem::QueryImpl(const AttributedGraph& query) const {
  QueryOutcome outcome;
  PPSM_TRACE_SPAN_CAT("query", "query");
  const SystemMetrics& metrics = SystemMetrics::Get();

  WallTimer anonymize_timer;
  Result<std::vector<uint8_t>> request_or = [&] {
    PPSM_TRACE_SPAN_CAT("query.anonymize", "query");
    return owner_->AnonymizeQueryToRequest(query);
  }();
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> request,
                        std::move(request_or));
  metrics.anonymize_ms.Observe(anonymize_timer.ElapsedMillis());
  outcome.request_bytes = request.size();
  outcome.network_ms += channel_.Transfer(request.size(), "query request");

  // Admission control, deadline and the plan cache all live behind the
  // service — a single in-process caller takes the same path a loaded
  // multi-client deployment would.
  PPSM_ASSIGN_OR_RETURN(const CloudServer::Answer answer,
                        service_->Execute(request));
  outcome.cloud = answer.stats;
  outcome.response_bytes = answer.response_payload.size();
  outcome.network_ms +=
      channel_.Transfer(answer.response_payload.size(), "query response");

  PPSM_ASSIGN_OR_RETURN(
      outcome.results,
      owner_->ProcessResponse(query, answer.response_payload,
                              &outcome.client));
  outcome.total_ms =
      outcome.cloud.total_ms + outcome.network_ms + outcome.client.total_ms;
  metrics.network_ms.Observe(outcome.network_ms);
  metrics.total_ms.Observe(outcome.total_ms);
  // The service filed the profile when the cloud replied; the post-cloud
  // times only exist now, so stamp them onto the record after the fact.
  FlightRecorder::Global().Annotate(
      outcome.cloud.query_id, [&outcome](QueryProfile& profile) {
        profile.network_ms = outcome.network_ms;
        profile.client_ms = outcome.client.total_ms;
        profile.total_ms = outcome.total_ms;
      });
  return outcome;
}

std::vector<QueryProfile> PpsmSystem::RecentQueryProfiles() {
  return FlightRecorder::Global().Recent();
}

std::vector<QueryProfile> PpsmSystem::SlowQueryProfiles() {
  return FlightRecorder::Global().SlowQueries();
}

Status PpsmSystem::DumpQueryLog(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open '" + path + "' for write");
  }
  out << ExportQueryLogJsonl(FlightRecorder::Global());
  out.close();
  if (!out) return Status::Internal("failed writing query log: " + path);
  return Status::OK();
}

BatchOutcome PpsmSystem::QueryBatch(std::span<const AttributedGraph> queries,
                                    size_t concurrency) const {
  BatchOutcome batch;
  batch.summary.queries = queries.size();
  if (queries.empty()) {
    batch.summary.plan_cache = cloud_->plan_cache_stats();
    return batch;
  }
  // Cap at the admission bound: pushing more workers than the gate admits
  // would only fill the bounded queue and turn surplus queries into
  // ResourceExhausted refusals.
  if (concurrency == 0 || concurrency > config_.cloud.max_inflight) {
    concurrency = config_.cloud.max_inflight;
  }

  // Result<T> has no default constructor, so the workers fill optional
  // slots; per-query wall times feed the exact percentile summary.
  std::vector<std::optional<Result<QueryOutcome>>> slots(queries.size());
  std::vector<double> wall_ms(queries.size(), 0.0);
  WallTimer batch_timer;
  {
    PPSM_TRACE_SPAN_CAT("query_batch", "query");
    ParallelFor(concurrency, queries.size(), [&](size_t i) {
      WallTimer query_timer;
      slots[i].emplace(Query(queries[i]));
      wall_ms[i] = query_timer.ElapsedMillis();
    });
  }
  batch.summary.wall_ms = batch_timer.ElapsedMillis();

  RunningStats latencies;
  batch.outcomes.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (slots[i]->ok()) {
      ++batch.summary.succeeded;
      latencies.Add(wall_ms[i]);
    } else {
      ++batch.summary.failed;
    }
    batch.outcomes.push_back(*std::move(slots[i]));
  }
  if (batch.summary.wall_ms > 0.0) {
    batch.summary.queries_per_second =
        static_cast<double>(batch.summary.succeeded) /
        (batch.summary.wall_ms / 1000.0);
  }
  if (latencies.count() > 0) {
    batch.summary.p50_ms = latencies.Percentile(50.0);
    batch.summary.p95_ms = latencies.Percentile(95.0);
  }
  batch.summary.plan_cache = cloud_->plan_cache_stats();
  return batch;
}

}  // namespace ppsm
