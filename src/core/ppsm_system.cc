#include "core/ppsm_system.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "cloud/owner_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/timer.h"

namespace ppsm {

namespace {

/// End-to-end metrics (the paper Fig. 22 decomposition: cloud + network +
/// client). Cloud-internal and client-internal phases record their own
/// metrics in cloud_server.cc / data_owner.cc.
struct SystemMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter queries_failed;
  MetricsRegistry::Histogram total_ms;
  MetricsRegistry::Histogram network_ms;
  MetricsRegistry::Histogram anonymize_ms;
  MetricsRegistry::Gauge upload_ms;

  static const SystemMetrics& Get() {
    static const SystemMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SystemMetrics metrics;
      metrics.queries =
          r.counter("ppsm_queries_total", "End-to-end queries attempted");
      metrics.queries_failed =
          r.counter("ppsm_queries_failed_total",
                    "Queries refused, expired or errored end to end");
      metrics.total_ms =
          r.histogram("ppsm_query_total_ms", DefaultLatencyBucketsMs(),
                      "End-to-end query time (cloud + network + client)");
      metrics.network_ms =
          r.histogram("ppsm_query_network_ms", DefaultLatencyBucketsMs(),
                      "Simulated request + response transfer per query");
      metrics.anonymize_ms =
          r.histogram("ppsm_query_anonymize_ms", DefaultLatencyBucketsMs(),
                      "Q -> Qo anonymization + serialization time");
      metrics.upload_ms =
          r.gauge("ppsm_setup_upload_transfer_ms",
                  "Simulated one-time upload transfer time");
      return metrics;
    }();
    return m;
  }
};

/// Refolds a flat QueryResponse into the legacy QueryOutcome shape (the
/// deprecated shims' return type).
Result<QueryOutcome> ToQueryOutcome(QueryResponse response) {
  if (!response.ok()) return response.status;
  QueryOutcome outcome;
  outcome.results = std::move(response.matches);
  outcome.cloud = std::move(response.cloud);
  outcome.client.expand_ms = response.client_expand_ms;
  outcome.client.filter_ms = response.client_filter_ms;
  outcome.client.total_ms = response.client_ms;
  outcome.client.candidates = response.client_candidates;
  outcome.client.results = outcome.results.NumMatches();
  outcome.network_ms = response.network_ms;
  outcome.total_ms = response.total_ms;
  outcome.request_bytes = response.request_bytes;
  outcome.response_bytes = response.response_bytes;
  return outcome;
}

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kEff:
      return "EFF";
    case Method::kRan:
      return "RAN";
    case Method::kFsim:
      return "FSIM";
    case Method::kBas:
      return "BAS";
  }
  return "?";
}

Result<PpsmSystem> PpsmSystem::Setup(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     const SystemConfig& config) {
  DataOwnerOptions options;
  options.k = config.k;
  options.grouping.theta = config.theta;
  options.grouping.seed = config.seed;
  options.kauto = config.kauto;
  options.setup_threads = config.setup_threads;
  options.go_hops = config.go_hops;
  switch (config.method) {
    case Method::kEff:
      options.strategy = GroupingStrategy::kCostModel;
      break;
    case Method::kRan:
      options.strategy = GroupingStrategy::kRandom;
      break;
    case Method::kFsim:
      options.strategy = GroupingStrategy::kFrequencySimilar;
      break;
    case Method::kBas:
      options.strategy = GroupingStrategy::kCostModel;
      options.baseline_upload = true;
      break;
  }

  PPSM_TRACE_SPAN_CAT("setup", "setup");
  PPSM_ASSIGN_OR_RETURN(
      DataOwner owner,
      DataOwner::Create(std::move(graph), std::move(schema), options));
  return HostFromOwner(std::make_unique<DataOwner>(std::move(owner)), config);
}

Result<PpsmSystem> PpsmSystem::HostFromOwner(std::unique_ptr<DataOwner> owner,
                                             const SystemConfig& config) {
  PpsmSystem system;
  system.config_ = config;
  PPSM_ASSIGN_OR_RETURN(system.channel_,
                        SimulatedChannel::Create(config.channel));
  system.owner_ = std::move(owner);

  system.upload_ms_ = system.channel_.Transfer(
      system.owner_->upload_bytes().size(), "upload");
  SystemMetrics::Get().upload_ms.Set(system.upload_ms_);

  if (config.num_shards > 1) {
    if (system.owner_->IsBaselineUpload()) {
      return Status::InvalidArgument(
          "sharded hosting needs the outsourced upload; the BAS baseline "
          "ships all of Gk and has no partitionable B1 block");
    }
    PPSM_TRACE_SPAN_CAT("setup.cloud_host", "setup");
    ClusterConfig cluster_config = ToClusterConfig(config.cloud);
    cluster_config.num_shards = config.num_shards;
    PPSM_ASSIGN_OR_RETURN(
        CloudCluster cluster,
        CloudCluster::Host(system.owner_->upload_bytes(), cluster_config,
                           ToShardConfig(config.cloud), config.channel));
    system.cluster_ = std::make_unique<CloudCluster>(std::move(cluster));
    system.service_ = std::make_unique<QueryService>(system.cluster_.get());
    return system;
  }

  {
    PPSM_TRACE_SPAN_CAT("setup.cloud_host", "setup");
    PPSM_ASSIGN_OR_RETURN(
        CloudServer cloud,
        CloudServer::Host(system.owner_->upload_bytes(), config.cloud));
    system.cloud_ = std::make_unique<CloudServer>(std::move(cloud));
  }
  system.service_ = std::make_unique<QueryService>(
      static_cast<const QueryHandler*>(system.cloud_.get()));
  return system;
}

Status PpsmSystem::SaveSnapshot(const std::string& directory) const {
  return SaveDataOwner(*owner_, directory, config_.setup_threads);
}

Result<PpsmSystem> PpsmSystem::LoadSnapshot(const std::string& directory,
                                            const SystemConfig& config) {
  PPSM_TRACE_SPAN_CAT("setup.load_snapshot", "setup");
  PPSM_ASSIGN_OR_RETURN(DataOwner owner, LoadDataOwner(directory));
  SystemConfig effective = config;
  effective.k = owner.k();
  if (owner.IsBaselineUpload()) effective.method = Method::kBas;
  return HostFromOwner(std::make_unique<DataOwner>(std::move(owner)),
                       effective);
}

QueryResponse PpsmSystem::Execute(const QueryRequest& request) const {
  // Attempts are counted up front so refusals and failures are not
  // invisible in the exported metrics (a dashboard reading only successes
  // under-reports load and hides error storms entirely).
  const SystemMetrics& metrics = SystemMetrics::Get();
  metrics.queries.Increment();
  QueryResponse response = ExecuteImpl(request);
  if (!response.ok()) metrics.queries_failed.Increment();
  return response;
}

QueryResponse PpsmSystem::ExecuteImpl(const QueryRequest& request) const {
  QueryResponse response;
  response.tag = request.tag;
  PPSM_TRACE_SPAN_CAT("query", "query");
  const SystemMetrics& metrics = SystemMetrics::Get();

  WallTimer anonymize_timer;
  Result<std::vector<uint8_t>> request_or = [&] {
    PPSM_TRACE_SPAN_CAT("query.anonymize", "query");
    return owner_->AnonymizeQueryToRequest(request.pattern);
  }();
  if (!request_or.ok()) {
    response.status = request_or.status();
    return response;
  }
  const std::vector<uint8_t> request_bytes = std::move(request_or).value();
  metrics.anonymize_ms.Observe(anonymize_timer.ElapsedMillis());
  response.request_bytes = request_bytes.size();
  response.network_ms +=
      channel_.Transfer(request_bytes.size(), "query request");

  // Admission control, deadline and the plan cache all live behind the
  // service — a single in-process caller takes the same path a loaded
  // multi-client deployment would. A per-request deadline overrides the
  // service-wide one; 0 defers to it.
  Result<WireAnswer> answer_or =
      request.deadline_ms == 0
          ? service_->Execute(request_bytes)
          : service_->Execute(
                request_bytes,
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(request.deadline_ms));
  if (!answer_or.ok()) {
    response.status = answer_or.status();
    return response;
  }
  const WireAnswer answer = std::move(answer_or).value();
  response.cloud = answer.stats;
  response.response_bytes = answer.response_payload.size();
  response.network_ms +=
      channel_.Transfer(answer.response_payload.size(), "query response");

  DataOwner::ClientStats client;
  Result<MatchSet> results = owner_->ProcessResponse(
      request.pattern, answer.response_payload, &client);
  if (!results.ok()) {
    response.status = results.status();
    return response;
  }
  response.matches = std::move(results).value();
  if (request.options.sorted_matches) {
    response.matches.SortDedup();
  }
  response.client_ms = client.total_ms;
  response.client_expand_ms = client.expand_ms;
  response.client_filter_ms = client.filter_ms;
  response.client_candidates = client.candidates;
  response.total_ms =
      response.cloud.total_ms + response.network_ms + response.client_ms;
  metrics.network_ms.Observe(response.network_ms);
  metrics.total_ms.Observe(response.total_ms);
  // The service filed the profile when the cloud replied; the post-cloud
  // times only exist now, so stamp them onto the record after the fact.
  FlightRecorder::Global().Annotate(
      response.cloud.query_id, [&response](QueryProfile& profile) {
        profile.network_ms = response.network_ms;
        profile.client_ms = response.client_ms;
        profile.total_ms = response.total_ms;
      });
  return response;
}

BatchResult PpsmSystem::ExecuteBatch(std::span<const QueryRequest> requests,
                                     size_t concurrency) const {
  BatchResult batch;
  batch.summary.queries = requests.size();
  if (requests.empty()) {
    batch.summary.plan_cache = CloudPlanCacheStats();
    return batch;
  }
  // Cap at the admission bound: pushing more workers than the gate admits
  // would only fill the bounded queue and turn surplus queries into
  // ResourceExhausted refusals.
  if (concurrency == 0 || concurrency > config_.cloud.max_inflight) {
    concurrency = config_.cloud.max_inflight;
  }

  batch.responses.resize(requests.size());
  std::vector<double> wall_ms(requests.size(), 0.0);
  WallTimer batch_timer;
  {
    PPSM_TRACE_SPAN_CAT("query_batch", "query");
    ParallelFor(concurrency, requests.size(), [&](size_t i) {
      WallTimer query_timer;
      batch.responses[i] = Execute(requests[i]);
      wall_ms[i] = query_timer.ElapsedMillis();
    });
  }
  batch.summary.wall_ms = batch_timer.ElapsedMillis();

  RunningStats latencies;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (batch.responses[i].ok()) {
      ++batch.summary.succeeded;
      latencies.Add(wall_ms[i]);
    } else {
      ++batch.summary.failed;
    }
  }
  if (batch.summary.wall_ms > 0.0) {
    batch.summary.queries_per_second =
        static_cast<double>(batch.summary.succeeded) /
        (batch.summary.wall_ms / 1000.0);
  }
  if (latencies.count() > 0) {
    batch.summary.p50_ms = latencies.Percentile(50.0);
    batch.summary.p95_ms = latencies.Percentile(95.0);
  }
  batch.summary.plan_cache = CloudPlanCacheStats();
  return batch;
}

Result<QueryOutcome> PpsmSystem::Query(const AttributedGraph& query) const {
  QueryRequest request;
  request.pattern = query;
  return ToQueryOutcome(Execute(request));
}

BatchOutcome PpsmSystem::QueryBatch(std::span<const AttributedGraph> queries,
                                    size_t concurrency) const {
  std::vector<QueryRequest> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i].pattern = queries[i];
  }
  BatchResult result = ExecuteBatch(requests, concurrency);
  BatchOutcome batch;
  batch.summary = result.summary;
  batch.outcomes.reserve(result.responses.size());
  for (QueryResponse& response : result.responses) {
    batch.outcomes.push_back(ToQueryOutcome(std::move(response)));
  }
  return batch;
}

std::vector<QueryProfile> PpsmSystem::RecentQueryProfiles() {
  return FlightRecorder::Global().Recent();
}

std::vector<QueryProfile> PpsmSystem::SlowQueryProfiles() {
  return FlightRecorder::Global().SlowQueries();
}

Status PpsmSystem::DumpQueryLog(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open '" + path + "' for write");
  }
  out << ExportQueryLogJsonl(FlightRecorder::Global());
  out.close();
  if (!out) return Status::Internal("failed writing query log: " + path);
  return Status::OK();
}

}  // namespace ppsm
