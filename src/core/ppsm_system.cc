#include "core/ppsm_system.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ppsm {

namespace {

/// End-to-end metrics (the paper Fig. 22 decomposition: cloud + network +
/// client). Cloud-internal and client-internal phases record their own
/// metrics in cloud_server.cc / data_owner.cc.
struct SystemMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Histogram total_ms;
  MetricsRegistry::Histogram network_ms;
  MetricsRegistry::Histogram anonymize_ms;
  MetricsRegistry::Gauge upload_ms;

  static const SystemMetrics& Get() {
    static const SystemMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SystemMetrics metrics;
      metrics.queries =
          r.counter("ppsm_queries_total", "End-to-end queries answered");
      metrics.total_ms =
          r.histogram("ppsm_query_total_ms", DefaultLatencyBucketsMs(),
                      "End-to-end query time (cloud + network + client)");
      metrics.network_ms =
          r.histogram("ppsm_query_network_ms", DefaultLatencyBucketsMs(),
                      "Simulated request + response transfer per query");
      metrics.anonymize_ms =
          r.histogram("ppsm_query_anonymize_ms", DefaultLatencyBucketsMs(),
                      "Q -> Qo anonymization + serialization time");
      metrics.upload_ms =
          r.gauge("ppsm_setup_upload_transfer_ms",
                  "Simulated one-time upload transfer time");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

const char* MethodName(Method method) {
  switch (method) {
    case Method::kEff:
      return "EFF";
    case Method::kRan:
      return "RAN";
    case Method::kFsim:
      return "FSIM";
    case Method::kBas:
      return "BAS";
  }
  return "?";
}

Result<PpsmSystem> PpsmSystem::Setup(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     const SystemConfig& config) {
  DataOwnerOptions options;
  options.k = config.k;
  options.grouping.theta = config.theta;
  options.grouping.seed = config.seed;
  options.kauto = config.kauto;
  switch (config.method) {
    case Method::kEff:
      options.strategy = GroupingStrategy::kCostModel;
      break;
    case Method::kRan:
      options.strategy = GroupingStrategy::kRandom;
      break;
    case Method::kFsim:
      options.strategy = GroupingStrategy::kFrequencySimilar;
      break;
    case Method::kBas:
      options.strategy = GroupingStrategy::kCostModel;
      options.baseline_upload = true;
      break;
  }

  PPSM_TRACE_SPAN_CAT("setup", "setup");
  PpsmSystem system;
  system.config_ = config;
  system.channel_ = SimulatedChannel(config.channel);

  PPSM_ASSIGN_OR_RETURN(
      DataOwner owner,
      DataOwner::Create(std::move(graph), std::move(schema), options));
  system.owner_ = std::make_unique<DataOwner>(std::move(owner));

  system.upload_ms_ = system.channel_.Transfer(
      system.owner_->upload_bytes().size(), "upload");
  SystemMetrics::Get().upload_ms.Set(system.upload_ms_);

  {
    PPSM_TRACE_SPAN_CAT("setup.cloud_host", "setup");
    PPSM_ASSIGN_OR_RETURN(CloudServer cloud,
                          CloudServer::Host(system.owner_->upload_bytes()));
    system.cloud_ = std::make_unique<CloudServer>(std::move(cloud));
  }
  system.cloud_->SetNumThreads(config.cloud_threads);
  return system;
}

Result<QueryOutcome> PpsmSystem::Query(const AttributedGraph& query) {
  QueryOutcome outcome;
  PPSM_TRACE_SPAN_CAT("query", "query");
  const SystemMetrics& metrics = SystemMetrics::Get();

  WallTimer anonymize_timer;
  Result<std::vector<uint8_t>> request_or = [&] {
    PPSM_TRACE_SPAN_CAT("query.anonymize", "query");
    return owner_->AnonymizeQueryToRequest(query);
  }();
  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> request,
                        std::move(request_or));
  metrics.anonymize_ms.Observe(anonymize_timer.ElapsedMillis());
  outcome.request_bytes = request.size();
  outcome.network_ms += channel_.Transfer(request.size(), "query request");

  PPSM_ASSIGN_OR_RETURN(const CloudServer::Answer answer,
                        cloud_->AnswerQuery(request));
  outcome.cloud = answer.stats;
  outcome.response_bytes = answer.response_payload.size();
  outcome.network_ms +=
      channel_.Transfer(answer.response_payload.size(), "query response");

  PPSM_ASSIGN_OR_RETURN(
      outcome.results,
      owner_->ProcessResponse(query, answer.response_payload,
                              &outcome.client));
  outcome.total_ms =
      outcome.cloud.total_ms + outcome.network_ms + outcome.client.total_ms;
  metrics.network_ms.Observe(outcome.network_ms);
  metrics.total_ms.Observe(outcome.total_ms);
  metrics.queries.Increment();
  return outcome;
}

}  // namespace ppsm
