#include "core/ppsm_system.h"

namespace ppsm {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kEff:
      return "EFF";
    case Method::kRan:
      return "RAN";
    case Method::kFsim:
      return "FSIM";
    case Method::kBas:
      return "BAS";
  }
  return "?";
}

Result<PpsmSystem> PpsmSystem::Setup(AttributedGraph graph,
                                     std::shared_ptr<const Schema> schema,
                                     const SystemConfig& config) {
  DataOwnerOptions options;
  options.k = config.k;
  options.grouping.theta = config.theta;
  options.grouping.seed = config.seed;
  options.kauto = config.kauto;
  switch (config.method) {
    case Method::kEff:
      options.strategy = GroupingStrategy::kCostModel;
      break;
    case Method::kRan:
      options.strategy = GroupingStrategy::kRandom;
      break;
    case Method::kFsim:
      options.strategy = GroupingStrategy::kFrequencySimilar;
      break;
    case Method::kBas:
      options.strategy = GroupingStrategy::kCostModel;
      options.baseline_upload = true;
      break;
  }

  PpsmSystem system;
  system.config_ = config;
  system.channel_ = SimulatedChannel(config.channel);

  PPSM_ASSIGN_OR_RETURN(
      DataOwner owner,
      DataOwner::Create(std::move(graph), std::move(schema), options));
  system.owner_ = std::make_unique<DataOwner>(std::move(owner));

  system.upload_ms_ = system.channel_.Transfer(
      system.owner_->upload_bytes().size(), "upload");

  PPSM_ASSIGN_OR_RETURN(CloudServer cloud,
                        CloudServer::Host(system.owner_->upload_bytes()));
  system.cloud_ = std::make_unique<CloudServer>(std::move(cloud));
  system.cloud_->SetNumThreads(config.cloud_threads);
  return system;
}

Result<QueryOutcome> PpsmSystem::Query(const AttributedGraph& query) {
  QueryOutcome outcome;

  PPSM_ASSIGN_OR_RETURN(const std::vector<uint8_t> request,
                        owner_->AnonymizeQueryToRequest(query));
  outcome.request_bytes = request.size();
  outcome.network_ms += channel_.Transfer(request.size(), "query request");

  PPSM_ASSIGN_OR_RETURN(const CloudServer::Answer answer,
                        cloud_->AnswerQuery(request));
  outcome.cloud = answer.stats;
  outcome.response_bytes = answer.response_payload.size();
  outcome.network_ms +=
      channel_.Transfer(answer.response_payload.size(), "query response");

  PPSM_ASSIGN_OR_RETURN(
      outcome.results,
      owner_->ProcessResponse(query, answer.response_payload,
                              &outcome.client));
  outcome.total_ms =
      outcome.cloud.total_ms + outcome.network_ms + outcome.client.total_ms;
  return outcome;
}

}  // namespace ppsm
