#ifndef PPSM_CORE_PPSM_SYSTEM_H_
#define PPSM_CORE_PPSM_SYSTEM_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/cluster.h"
#include "cloud/data_owner.h"
#include "cloud/query_service.h"
#include "graph/attributed_graph.h"
#include "query/query_api.h"
#include "util/status.h"

namespace ppsm {

/// The four evaluated methods (paper §6.1 SETUP).
enum class Method {
  kEff,   // Cost-model label combination + Go upload (all optimizations).
  kRan,   // Random label combination + Go upload.
  kFsim,  // Frequency-similar combination + Go upload.
  kBas,   // Cost-model combination + full-Gk upload (the §3 baseline).
};

const char* MethodName(Method method);

/// End-to-end configuration of one deployment.
struct SystemConfig {
  Method method = Method::kEff;
  uint32_t k = 2;
  size_t theta = 2;
  ChannelConfig channel;
  uint64_t seed = 13;
  /// Serving-side knobs: star-matching threads, plan cache, admission bound,
  /// per-query deadline. Fixed at Setup (the hosted server is immutable).
  CloudConfig cloud;
  /// Cloud shard count. 1 hosts the classic single CloudServer; >1 hosts a
  /// CloudCluster of that many slice servers (byte-identical results at any
  /// value — DESIGN.md §13). Requires an outsourced upload: the BAS method
  /// is rejected when sharded.
  uint32_t num_shards = 1;
  /// Forwarded to the k-automorphism builder (alignment strategy etc.).
  KAutomorphismOptions kauto;
  /// Workers for the offline pipeline (grouping, k-automorphism, Go
  /// extraction, snapshot saves). Artifacts and upload bytes are
  /// byte-identical at every value (DESIGN.md §11); 0 behaves like 1.
  size_t setup_threads = 1;
  /// Go extraction radius around B1 (>= 1). 1 is the paper's Go and keeps
  /// every artifact byte-identical to before; radius h lets the cloud plan
  /// and match decomposition units of depth up to h (path/tree units —
  /// DESIGN.md §14). The planner's unit depth can be tightened further with
  /// cloud.max_unit_depth (1 = star-only planning at any radius). Ignored
  /// by the BAS baseline, which ships all of Gk.
  uint32_t go_hops = 1;
};

/// One privacy-preserving subgraph query, end to end (paper Fig. 22's
/// decomposition: cloud time + network time + client time). Legacy shape —
/// new callers receive the flat QueryResponse from Execute() instead.
struct QueryOutcome {
  MatchSet results;  // Exact R(Q,G).
  CloudQueryStats cloud;
  DataOwner::ClientStats client;
  double network_ms = 0.0;  // Simulated request + response transfer.
  double total_ms = 0.0;    // cloud + network + client.
  size_t request_bytes = 0;
  size_t response_bytes = 0;
};

/// Aggregate view of one batch run. Latency percentiles are exact (computed
/// from the per-query wall times of this batch, not the bucketed registry
/// histograms); throughput is wall-clock queries per second over the whole
/// batch.
struct BatchSummary {
  size_t queries = 0;
  size_t succeeded = 0;
  size_t failed = 0;  // Refused, expired or errored (see responses[i]).
  double wall_ms = 0.0;
  double queries_per_second = 0.0;
  double p50_ms = 0.0;  // Per-query wall latency, successful queries.
  double p95_ms = 0.0;
  /// Plan-cache counters of the hosted cloud after the batch (cumulative
  /// over its lifetime, not just this batch; the coordinator cache when
  /// sharded).
  PlanCacheStats plan_cache;
};

/// Per-query responses plus the aggregate. responses[i] corresponds to
/// requests[i] of the ExecuteBatch call.
struct BatchResult {
  std::vector<QueryResponse> responses;
  BatchSummary summary;
};

/// Legacy batch shape returned by the deprecated QueryBatch shim.
struct BatchOutcome {
  std::vector<Result<QueryOutcome>> outcomes;
  BatchSummary summary;
};

/// Facade wiring a DataOwner, a SimulatedChannel and a cloud (one
/// CloudServer, or a CloudCluster when config.num_shards > 1) into the
/// paper's full workflow: Setup() runs the offline pipeline and "uploads"
/// (serializing through the channel); Execute() anonymizes the pattern,
/// ships Qo, runs the cloud evaluation, ships the response, and
/// post-processes to exact answers.
///
/// Thread-safety: after Setup, the system is immutable. Execute() and
/// ExecuteBatch() are const and safe to call from any number of threads
/// concurrently; every query passes through the cloud's QueryService, so
/// SystemConfig::cloud.max_inflight and .query_deadline_ms apply uniformly.
class PpsmSystem {
 public:
  static Result<PpsmSystem> Setup(AttributedGraph graph,
                                  std::shared_ptr<const Schema> schema,
                                  const SystemConfig& config);

  /// Persists the owner-side state (schema, G, LCT, Gk, AVT) to `directory`
  /// as binary snapshots, so a later LoadSnapshot can skip the offline
  /// pipeline entirely (k-automorphism + grouping dominate setup time).
  Status SaveSnapshot(const std::string& directory) const;

  /// Rebuilds a full system from a SaveSnapshot directory: restores the
  /// owner, re-derives the upload package deterministically, and re-hosts
  /// the cloud side. `config` supplies the serving/channel knobs; the
  /// snapshot's own k and baseline-upload flag win over config (method is
  /// only used for labeling — the grouping it names was already applied).
  static Result<PpsmSystem> LoadSnapshot(const std::string& directory,
                                         const SystemConfig& config);

  /// One query end to end — THE entry point; everything else is a shim.
  /// Never throws and never loses stats: a refused/expired/failed query
  /// comes back with response.status set and the phases that ran accounted.
  /// Thread-safe.
  QueryResponse Execute(const QueryRequest& request) const;

  /// Runs a workload concurrently: up to `concurrency` requests in flight
  /// at once (0 = config().cloud.max_inflight), drawing workers from the
  /// shared ThreadPool. Per-query failures (refusal, deadline, row cap)
  /// land in the corresponding responses slot; the batch itself always
  /// completes.
  BatchResult ExecuteBatch(std::span<const QueryRequest> requests,
                           size_t concurrency = 0) const;

  /// Legacy single-query entry point.
  [[deprecated("use Execute(QueryRequest) — one request/response pair")]]
  Result<QueryOutcome> Query(const AttributedGraph& query) const;

  /// Legacy batch entry point.
  [[deprecated("use ExecuteBatch(std::span<const QueryRequest>)")]]
  BatchOutcome QueryBatch(std::span<const AttributedGraph> queries,
                          size_t concurrency = 0) const;

  /// Flight-recorder views: the process-global recorder's ring of recent
  /// query profiles and its slow/failed-query captures (every query routed
  /// through a QueryService lands there, from any system in the process).
  static std::vector<QueryProfile> RecentQueryProfiles();
  static std::vector<QueryProfile> SlowQueryProfiles();
  /// Writes the recorder's query log (slow captures + recent ring) to
  /// `path` as JSONL, one QueryProfile per line.
  static Status DumpQueryLog(const std::string& path);

  const SetupStats& setup_stats() const { return owner_->setup_stats(); }
  const DataOwner& owner() const { return *owner_; }
  /// The hosted server (shard 0 of the cluster when sharded).
  const CloudServer& cloud() const {
    return cluster_ ? cluster_->shard(0) : *cloud_;
  }
  /// The hosted cluster; null on the single-server path.
  const CloudCluster* cluster() const { return cluster_.get(); }
  const QueryService& service() const { return *service_; }
  const SimulatedChannel& channel() const { return channel_; }
  const SystemConfig& config() const { return config_; }
  /// Simulated upload transfer time (the one-time outsourcing cost).
  double upload_ms() const { return upload_ms_; }

 private:
  PpsmSystem() = default;

  /// Shared tail of Setup/LoadSnapshot: charges the upload transfer, hosts
  /// the cloud (server or cluster) from the owner's upload bytes, and wires
  /// the service.
  static Result<PpsmSystem> HostFromOwner(std::unique_ptr<DataOwner> owner,
                                          const SystemConfig& config);

  /// Execute() body; the wrapper owns the attempt/failure counters so
  /// refused and errored queries stay visible in the metrics.
  QueryResponse ExecuteImpl(const QueryRequest& request) const;

  /// The cumulative plan-cache counters of whichever cloud is hosted.
  PlanCacheStats CloudPlanCacheStats() const {
    return cluster_ ? cluster_->plan_cache_stats()
                    : cloud_->plan_cache_stats();
  }

  SystemConfig config_;
  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<CloudServer> cloud_;    // Single-server path.
  std::unique_ptr<CloudCluster> cluster_;  // Sharded path (num_shards > 1).
  std::unique_ptr<QueryService> service_;
  SimulatedChannel channel_;
  double upload_ms_ = 0.0;
};

}  // namespace ppsm

#endif  // PPSM_CORE_PPSM_SYSTEM_H_
