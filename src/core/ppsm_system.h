#ifndef PPSM_CORE_PPSM_SYSTEM_H_
#define PPSM_CORE_PPSM_SYSTEM_H_

#include <memory>
#include <string>

#include "cloud/channel.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace ppsm {

/// The four evaluated methods (paper §6.1 SETUP).
enum class Method {
  kEff,   // Cost-model label combination + Go upload (all optimizations).
  kRan,   // Random label combination + Go upload.
  kFsim,  // Frequency-similar combination + Go upload.
  kBas,   // Cost-model combination + full-Gk upload (the §3 baseline).
};

const char* MethodName(Method method);

/// End-to-end configuration of one deployment.
struct SystemConfig {
  Method method = Method::kEff;
  uint32_t k = 2;
  size_t theta = 2;
  ChannelConfig channel;
  uint64_t seed = 13;
  /// Worker threads for the cloud's star-matching phase (1 = serial).
  size_t cloud_threads = 1;
  /// Forwarded to the k-automorphism builder (alignment strategy etc.).
  KAutomorphismOptions kauto;
};

/// One privacy-preserving subgraph query, end to end (paper Fig. 22's
/// decomposition: cloud time + network time + client time).
struct QueryOutcome {
  MatchSet results;  // Exact R(Q,G).
  CloudQueryStats cloud;
  DataOwner::ClientStats client;
  double network_ms = 0.0;  // Simulated request + response transfer.
  double total_ms = 0.0;    // cloud + network + client.
  size_t request_bytes = 0;
  size_t response_bytes = 0;
};

/// Facade wiring a DataOwner, a SimulatedChannel and a CloudServer into the
/// paper's full workflow: Setup() runs the offline pipeline and "uploads"
/// (serializing through the channel); Query() anonymizes Q, ships Qo, runs
/// the cloud evaluation, ships the response, and post-processes to exact
/// answers.
class PpsmSystem {
 public:
  static Result<PpsmSystem> Setup(AttributedGraph graph,
                                  std::shared_ptr<const Schema> schema,
                                  const SystemConfig& config);

  Result<QueryOutcome> Query(const AttributedGraph& query);

  const SetupStats& setup_stats() const { return owner_->setup_stats(); }
  const DataOwner& owner() const { return *owner_; }
  const CloudServer& cloud() const { return *cloud_; }
  const SimulatedChannel& channel() const { return channel_; }
  const SystemConfig& config() const { return config_; }
  /// Simulated upload transfer time (the one-time outsourcing cost).
  double upload_ms() const { return upload_ms_; }

 private:
  PpsmSystem() = default;

  SystemConfig config_;
  std::unique_ptr<DataOwner> owner_;
  std::unique_ptr<CloudServer> cloud_;
  SimulatedChannel channel_;
  double upload_ms_ = 0.0;
};

}  // namespace ppsm

#endif  // PPSM_CORE_PPSM_SYSTEM_H_
