#ifndef PPSM_UTIL_THREAD_POOL_H_
#define PPSM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppsm {

/// Persistent worker pool shared by ParallelFor and the cloud serving layer.
/// Replaces the per-call std::thread spawn/join the star-matching phase used
/// to pay on every query.
///
/// Scheduling: each worker owns a queue; Submit distributes tasks
/// round-robin; a worker drains its own queue first and then steals from its
/// siblings, so a burst landing on one queue spreads across the pool. Tasks
/// are coarse (a whole query, or one ParallelFor helper loop), so a single
/// lock over the queues is not a bottleneck.
///
/// Contracts:
///  * Tasks must not throw — the library is exception-free (Status/Result
///    carry errors) and an escaping exception would std::terminate inside a
///    worker with no caller to report to.
///  * Tasks must not block waiting for *other pool tasks* to be scheduled
///    (that can deadlock a saturated pool). ParallelFor observes this by
///    degrading to a serial loop when invoked from a worker thread, and by
///    stealing pending tasks while it waits for its helpers.
///  * Lazy start: threads are spawned on the first Submit, so merely linking
///    the pool (or constructing one in a test) costs nothing.
///  * Graceful shutdown: the destructor finishes every queued task, then
///    joins the workers.
class ThreadPool {
 public:
  /// The process-wide pool, sized DefaultPoolThreads(). Never destroyed
  /// (leaked on purpose, like MetricsRegistry::Global) so shutdown order is
  /// a non-issue.
  static ThreadPool& Shared();

  /// True while the calling thread is executing a pool task (including a
  /// task stolen by TryRunPendingTask). Nested-parallelism guard.
  static bool InWorkerThread();

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Thread-safe. Spawns the workers on first use. Tasks
  /// submitted after shutdown began run inline on the calling thread (only
  /// reachable from a task scheduled during destruction).
  void Submit(std::function<void()> task);

  /// Pops one pending (not yet started) task and runs it on the calling
  /// thread; returns false if every queue was empty. Lets a thread blocked
  /// on pool work make progress instead of sleeping behind the backlog.
  bool TryRunPendingTask();

  size_t num_threads() const { return num_threads_; }
  /// Tasks submitted but not yet started. Point-in-time; exported as the
  /// ppsm_pool_queue_depth gauge by the serving layer.
  size_t QueueDepth() const;
  /// True once the lazy first Submit has spawned the workers.
  bool started() const;

 private:
  void WorkerLoop(size_t worker_index);
  /// Pops the next task with `mu_` held: own queue front first, then steals
  /// from the other queues. `worker_index` == num_threads_ means "external
  /// thief" (TryRunPendingTask) with no own queue.
  bool PopTaskLocked(size_t worker_index, std::function<void()>* task);

  const size_t num_threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<std::function<void()>>> queues_;  // One per worker.
  std::vector<std::thread> workers_;
  size_t next_queue_ = 0;  // Round-robin Submit target.
  size_t pending_ = 0;     // Submitted, not yet started.
  bool started_ = false;
  bool stop_ = false;
};

/// Pool size for ThreadPool::Shared(): PPSM_POOL_THREADS if set (>=1), else
/// HardwareThreads(). The env override matters on small CI containers where
/// hardware_concurrency() underreports the useful concurrency of tests.
size_t DefaultPoolThreads();

}  // namespace ppsm

#endif  // PPSM_UTIL_THREAD_POOL_H_
