#ifndef PPSM_UTIL_INTERSECT_H_
#define PPSM_UTIL_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ppsm {

/// Sorted-set intersection kernels over the CSR uint32 pools — the inner
/// primitive of the auxiliary-graph matcher (match/aux_graph.h): leaf/slot
/// enumeration is intersect(pruned-adjacency(parent), candidate-set(slot))
/// instead of filter-while-walking. Inputs are ascending and duplicate-free
/// (every per-vertex CSR range and every aux candidate set is); the output
/// is the ascending common subsequence, so swapping kernels can never change
/// enumeration order — the determinism contract of DESIGN.md §15.
enum class IntersectKernel : uint8_t {
  kAuto = 0,       // Cost model picks per call (size ratio + SIMD support).
  kScalar = 1,     // Two-pointer merge.
  kGalloping = 2,  // Exponential+binary probe of the larger side.
  kSimd = 3,       // SSE/AVX2 block compare (scalar fallback off-x86).
};

/// Lower-case kernel name ("auto", "scalar", "galloping", "simd").
const char* IntersectKernelName(IntersectKernel kernel);

/// Parses an IntersectKernelName back (CLI flag / A-B override). Typed
/// InvalidArgument on anything else.
Result<IntersectKernel> ParseIntersectKernel(std::string_view name);

/// Per-kernel dispatch counts. Plain integers: keep one per thread (or per
/// chunk task) and merge at the end — the matcher's inner loop is far too
/// hot for shared atomics.
struct IntersectCounters {
  uint64_t scalar = 0;
  uint64_t galloping = 0;
  uint64_t simd = 0;

  IntersectCounters& operator+=(const IntersectCounters& other) {
    scalar += other.scalar;
    galloping += other.galloping;
    simd += other.simd;
    return *this;
  }
};

/// True when the CPU supports the vectorized kernel (SSSE3+SSE4.1 at least;
/// AVX2 upgrades the block width). Queried once at static init; on non-x86
/// builds this is false and IntersectSimd degrades to the scalar merge.
bool SimdIntersectAvailable();

/// The SIMD kernels store whole blocks and then advance by the matched
/// count, so `out` must have room for min(|a|,|b|) + kIntersectSlack
/// elements (the slack is scratch: elements at and beyond the returned
/// count are garbage). IntersectInto handles the padding for you.
inline constexpr size_t kIntersectSlack = 8;

/// Two-pointer merge intersection. out capacity >= min(|a|, |b|).
size_t IntersectScalar(std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint32_t* out);

/// Galloping (exponential probe + binary search) intersection — walks the
/// smaller input and hunts each value in the larger one, O(m log(M/m)).
/// The win case is skewed size ratios (a hub adjacency vs a selective
/// candidate set). out capacity >= min(|a|, |b|).
size_t IntersectGalloping(std::span<const uint32_t> a,
                          std::span<const uint32_t> b, uint32_t* out);

/// Branch-free SIMD block intersection (AVX2 when the CPU has it, else
/// SSE, else the scalar merge). out capacity >= min(|a|, |b|) +
/// kIntersectSlack.
size_t IntersectSimd(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     uint32_t* out);

/// Intersects with the requested kernel; kAuto applies the extended §5.1
/// cost model (see intersect.cc for the calibrated constants): galloping
/// once the size ratio crosses its log-crossover, SIMD for balanced inputs
/// big enough to fill blocks, scalar otherwise. Bumps `counters` (when
/// non-null) for the kernel that actually ran. out capacity >=
/// min(|a|, |b|) + kIntersectSlack.
size_t IntersectSorted(std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint32_t* out,
                       IntersectKernel kernel = IntersectKernel::kAuto,
                       IntersectCounters* counters = nullptr);

/// IntersectSorted into a reused vector: sizes `out` (capacity incl. the
/// SIMD slack) and shrinks it to the exact result count.
void IntersectInto(std::span<const uint32_t> a, std::span<const uint32_t> b,
                   std::vector<uint32_t>* out,
                   IntersectKernel kernel = IntersectKernel::kAuto,
                   IntersectCounters* counters = nullptr);

}  // namespace ppsm

#endif  // PPSM_UTIL_INTERSECT_H_
