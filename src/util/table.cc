#include "util/table.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace ppsm {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  oss << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      oss << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << cells[c];
    }
    oss << '\n';
  };
  emit_row(columns_);
  size_t rule = 0;
  for (size_t w : widths) rule += w + 2;
  oss << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string Table::ToCsv() const {
  std::ostringstream oss;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) oss << ',';
    oss << CsvEscape(columns_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) oss << ',';
      oss << CsvEscape(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

void Table::Print() const { std::cout << ToString() << std::endl; }

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string Table::Num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace ppsm
