#ifndef PPSM_UTIL_STATUS_H_
#define PPSM_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ppsm {

/// Error categories used across the library. Mirrors the usual
/// database-engine status taxonomy (RocksDB/Arrow style) so call sites can
/// branch on coarse error classes without string matching.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, exception-free error carrier. Functions that can fail return
/// `Status` (or `Result<T>`, below) instead of throwing; `ok()` gates the
/// happy path. An OK status stores no message and never allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message. `code` must not be
  /// kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code_ != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Value-or-error result, the return type of fallible factories. Either holds
/// a `T` (then `ok()` is true) or a non-OK `Status`.
///
///   Result<Graph> r = Graph::Load(path);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return my_t;` in a Result-returning
  /// function.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result must not be constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

/// Uniform access to the Status of a Status or a Result<T>; lets macros work
/// on both.
inline const Status& GetStatus(const Status& status) { return status; }
template <typename T>
const Status& GetStatus(const Result<T>& result) {
  return result.status();
}

}  // namespace ppsm

/// Evaluates `expr` (a Status expression) and early-returns it on failure.
#define PPSM_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ppsm::Status _ppsm_status = (expr);       \
    if (!_ppsm_status.ok()) return _ppsm_status; \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on failure returns its status,
/// otherwise assigns the value into `lhs`.
#define PPSM_ASSIGN_OR_RETURN(lhs, rexpr)       \
  PPSM_ASSIGN_OR_RETURN_IMPL(                   \
      PPSM_STATUS_CONCAT(_ppsm_result, __LINE__), lhs, rexpr)

#define PPSM_STATUS_CONCAT_INNER(a, b) a##b
#define PPSM_STATUS_CONCAT(a, b) PPSM_STATUS_CONCAT_INNER(a, b)
#define PPSM_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#endif  // PPSM_UTIL_STATUS_H_
