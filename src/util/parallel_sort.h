#ifndef PPSM_UTIL_PARALLEL_SORT_H_
#define PPSM_UTIL_PARALLEL_SORT_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace ppsm {

/// Parallel merge sort over a contiguous range: contiguous chunks are sorted
/// concurrently, then adjacent pairs are merged level by level (the merges of
/// one level are disjoint, so they run concurrently too). The final order is
/// the total order induced by `less` regardless of thread count or chunking,
/// except among equivalent elements (std::sort inside a chunk is unstable) —
/// callers that need byte-identical output across thread counts must either
/// have no equivalent-but-distinct elements (sorting integer keys) or
/// tolerate any permutation of equivalents (a following unique() pass).
/// `min_chunk` bounds chunk size from below so small inputs stay serial.
template <typename Iter, typename Less>
void ParallelSort(Iter begin, Iter end, size_t num_threads, Less less,
                  size_t min_chunk = size_t{1} << 13) {
  const size_t n = static_cast<size_t>(end - begin);
  if (num_threads <= 1 || n < 2 * min_chunk) {
    std::sort(begin, end, less);
    return;
  }
  auto chunks = SplitIntoChunks(n, num_threads, min_chunk);
  ParallelFor(num_threads, chunks.size(), [&](size_t c) {
    std::sort(begin + chunks[c].first, begin + chunks[c].second, less);
  });
  while (chunks.size() > 1) {
    const size_t pairs = chunks.size() / 2;
    std::vector<std::pair<size_t, size_t>> merged;
    merged.reserve(pairs + chunks.size() % 2);
    for (size_t p = 0; p < pairs; ++p) {
      merged.emplace_back(chunks[2 * p].first, chunks[2 * p + 1].second);
    }
    if (chunks.size() % 2 != 0) merged.push_back(chunks.back());
    ParallelFor(num_threads, pairs, [&](size_t p) {
      std::inplace_merge(begin + chunks[2 * p].first,
                         begin + chunks[2 * p].second,
                         begin + chunks[2 * p + 1].second, less);
    });
    chunks = std::move(merged);
  }
}

template <typename Iter>
void ParallelSort(Iter begin, Iter end, size_t num_threads) {
  ParallelSort(begin, end, num_threads, std::less<>{});
}

/// ParallelSort + unique + shrink: canonicalizes a key vector into its sorted
/// duplicate-free form. Deterministic for any element type whose equivalent
/// elements are interchangeable (exact duplicates), which is what the
/// k-automorphism edge closure and the Go neighbor set feed it.
template <typename T>
void ParallelSortUnique(std::vector<T>* items, size_t num_threads,
                        size_t min_chunk = size_t{1} << 13) {
  ParallelSort(items->begin(), items->end(), num_threads, std::less<>{},
               min_chunk);
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

}  // namespace ppsm

#endif  // PPSM_UTIL_PARALLEL_SORT_H_
