#ifndef PPSM_UTIL_LRU_CACHE_H_
#define PPSM_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace ppsm {

/// Fixed-capacity least-recently-used map. Backs the cloud's decomposition
/// plan cache: Get promotes the entry to most-recently-used; Put evicts the
/// LRU entry once `capacity` is exceeded. Capacity 0 disables the cache
/// (every Get misses, Put is a no-op).
///
/// NOT internally synchronized — concurrent users (CloudServer) hold their
/// own mutex around every call. Get returns a copy for that reason: no
/// pointers into the cache escape the caller's critical section.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  LruCache() : LruCache(0) {}
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Copy of the cached value, or nullopt. A hit becomes most-recently-used.
  std::optional<Value> Get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; the entry becomes most-recently-used. Evicts the
  /// least-recently-used entry when over capacity.
  void Put(Key key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(std::move(key), order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // Front = most recently used.
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace ppsm

#endif  // PPSM_UTIL_LRU_CACHE_H_
