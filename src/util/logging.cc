#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace ppsm {

namespace {

/// Parses PPSM_LOG_LEVEL (DEBUG/INFO/WARNING/ERROR, case-sensitive).
/// Returns true and sets `*out` when the variable is present and valid.
bool LogLevelFromEnv(LogLevel* out) {
  const char* value = std::getenv("PPSM_LOG_LEVEL");
  if (value == nullptr) return false;
  if (std::strcmp(value, "DEBUG") == 0) {
    *out = LogLevel::kDebug;
  } else if (std::strcmp(value, "INFO") == 0) {
    *out = LogLevel::kInfo;
  } else if (std::strcmp(value, "WARNING") == 0 ||
             std::strcmp(value, "WARN") == 0) {
    *out = LogLevel::kWarning;
  } else if (std::strcmp(value, "ERROR") == 0) {
    *out = LogLevel::kError;
  } else {
    std::cerr << "[WARN] ignoring unrecognized PPSM_LOG_LEVEL='" << value
              << "' (want DEBUG|INFO|WARNING|ERROR)" << std::endl;
    return false;
  }
  return true;
}

/// Environment wins over programmatic SetLogLevel so a user can turn on
/// DEBUG without recompiling even when a bench pins kWarning. Read exactly
/// once, at first use.
struct EnvLevel {
  LogLevel level = LogLevel::kInfo;
  bool pinned = false;
  EnvLevel() { pinned = LogLevelFromEnv(&level); }
};

const EnvLevel& GetEnvLevel() {
  static const EnvLevel env;
  return env;
}

std::atomic<LogLevel> g_log_level{GetEnvLevel().level};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  if (GetEnvLevel().pinned) return;  // PPSM_LOG_LEVEL takes precedence.
  g_log_level.store(level);
}
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) stream_ << "[" << LevelName(level_) << "] " << file << ":"
                        << line << " ";
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL] " << file << ":" << line << " Check failed: ("
          << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace ppsm
