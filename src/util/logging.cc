#include "util/logging.h"

#include <atomic>

namespace ppsm {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level.load()), level_(level) {
  if (enabled_) stream_ << "[" << LevelName(level_) << "] " << file << ":"
                        << line << " ";
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL] " << file << ":" << line << " Check failed: ("
          << condition << ") ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal_logging
}  // namespace ppsm
