#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppsm {

void RunningStats::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

double RunningStats::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double RunningStats::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double RunningStats::Mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double RunningStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - mean) * (s - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double RunningStats::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace ppsm
