#ifndef PPSM_UTIL_ZIPF_H_
#define PPSM_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace ppsm {

/// Samples ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^s.
///
/// The paper observes (§6.1) that vertex-label frequencies on all three of
/// its datasets roughly obey Zipf's law; the synthetic dataset generators use
/// this sampler to reproduce that skew. Sampling is O(log n) per draw via
/// binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `skew` >= 0 (0 degenerates to uniform).
  ZipfDistribution(uint64_t n, double skew);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank `i`.
  double Pmf(uint64_t i) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  uint64_t n_;
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.
};

}  // namespace ppsm

#endif  // PPSM_UTIL_ZIPF_H_
