#include "util/thread_pool.h"

#include <cstdlib>
#include <utility>

#include "util/parallel.h"

namespace ppsm {

namespace {
thread_local bool t_in_pool_worker = false;

/// RAII flip of the worker flag around task execution, so tasks stolen via
/// TryRunPendingTask get the same nested-parallelism guard as tasks running
/// on a real worker thread.
class ScopedWorkerFlag {
 public:
  ScopedWorkerFlag() : previous_(t_in_pool_worker) { t_in_pool_worker = true; }
  ~ScopedWorkerFlag() { t_in_pool_worker = previous_; }

 private:
  bool previous_;
};
}  // namespace

size_t DefaultPoolThreads() {
  if (const char* env = std::getenv("PPSM_POOL_THREADS")) {
    const long n = std::atol(env);
    if (n >= 1) return static_cast<size_t>(n);
  }
  return HardwareThreads();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(DefaultPoolThreads());
  return *pool;
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads),
      queues_(num_threads_) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      if (!started_) {
        started_ = true;
        workers_.reserve(num_threads_);
        for (size_t i = 0; i < num_threads_; ++i) {
          workers_.emplace_back([this, i] { WorkerLoop(i); });
        }
      }
      queues_[next_queue_].push_back(std::move(task));
      next_queue_ = (next_queue_ + 1) % queues_.size();
      ++pending_;
      cv_.notify_one();
      return;
    }
  }
  // Shutting down: run inline rather than dropping the task.
  ScopedWorkerFlag flag;
  task();
}

bool ThreadPool::PopTaskLocked(size_t worker_index,
                               std::function<void()>* task) {
  // Own queue first (front: oldest first, keeps ParallelFor helpers timely),
  // then steal round-robin from the siblings.
  for (size_t offset = 0; offset < queues_.size(); ++offset) {
    const size_t q = (worker_index + offset) % queues_.size();
    if (!queues_[q].empty()) {
      *task = std::move(queues_[q].front());
      queues_[q].pop_front();
      --pending_;
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunPendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!PopTaskLocked(/*worker_index=*/0, &task)) return false;
  }
  ScopedWorkerFlag flag;
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  ScopedWorkerFlag flag;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::function<void()> task;
    if (PopTaskLocked(worker_index, &task)) {
      lock.unlock();
      task();
      task = nullptr;  // Release captures before re-acquiring the lock.
      lock.lock();
      continue;
    }
    if (stop_) return;  // Queues drained; graceful exit.
    cv_.wait(lock);
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

bool ThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

}  // namespace ppsm
