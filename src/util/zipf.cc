#include "util/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppsm {

ZipfDistribution::ZipfDistribution(uint64_t n, double skew)
    : n_(n), skew_(skew), cdf_(n) {
  assert(n >= 1);
  assert(skew >= 0.0);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_.back() = 1.0;  // Guard against accumulated rounding.
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t i) const {
  assert(i < n_);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace ppsm
