#ifndef PPSM_UTIL_HASH_H_
#define PPSM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace ppsm {

/// 64-bit avalanche mix (the finalizer of MurmurHash3). Spreads low-entropy
/// integer keys (vertex ids) across the hash space.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combine, boost::hash_combine style but 64-bit.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Canonical key for an undirected edge: order-insensitive, collision-free
/// for 32-bit vertex ids. Backs the client-side O(1) edge-existence filter
/// (paper §4.2.2: "easy to design some hashing techniques to speed up the
/// filtering").
inline uint64_t UndirectedEdgeKey(uint32_t u, uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Hash functor for 64-bit edge keys in unordered containers.
struct EdgeKeyHash {
  size_t operator()(uint64_t key) const {
    return static_cast<size_t>(Mix64(key));
  }
};

}  // namespace ppsm

#endif  // PPSM_UTIL_HASH_H_
