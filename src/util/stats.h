#ifndef PPSM_UTIL_STATS_H_
#define PPSM_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ppsm {

/// Streaming summary of a sequence of samples (times, sizes, counts). The
/// benchmark harnesses average 100 queries per configuration exactly like
/// the paper (§6.3 "We used 100 queries and report the average").
class RunningStats {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double StdDev() const;
  /// Linear-interpolated percentile; `p` in [0, 100]. The sorted order is
  /// cached and invalidated by Add, so bench loops asking for p50/p95/p99
  /// after every iteration pay one sort per Add, not one per percentile.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  /// Percentile cache: `sorted_` mirrors `samples_` in ascending order and
  /// is rebuilt lazily when `sorted_valid_` is false.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = true;  // Vacuously valid while empty.
};

}  // namespace ppsm

#endif  // PPSM_UTIL_STATS_H_
