#ifndef PPSM_UTIL_TABLE_H_
#define PPSM_UTIL_TABLE_H_

#include <sstream>
#include <string>
#include <vector>

namespace ppsm {

/// Builds the aligned console tables and CSV files that the benchmark
/// harnesses emit — one table per paper figure/table, with the same row and
/// column structure the paper reports.
class Table {
 public:
  /// `title` is printed above the table (e.g. "Figure 12: |E(Go)| and
  /// |E(Gk)| using EFF").
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a row. Must have exactly as many cells as there are columns.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({FormatCell(values)...});
  }

  size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Console rendering with padded columns.
  std::string ToString() const;
  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;
  /// Writes ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  /// Formats a double with `precision` digits after the decimal point.
  static std::string Num(double value, int precision = 2);

 private:
  template <typename T>
  static std::string FormatCell(const T& value);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Implementation details only below here.

template <typename T>
std::string Table::FormatCell(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return value;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(value);
  } else {
    std::ostringstream oss;
    oss << value;
    return oss.str();
  }
}

}  // namespace ppsm

#endif  // PPSM_UTIL_TABLE_H_
