#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace ppsm {

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(size_t num_threads, size_t num_items,
                 const std::function<void(size_t)>& fn) {
  if (num_items == 0) return;
  if (num_threads <= 1 || num_items == 1) {
    for (size_t i = 0; i < num_items; ++i) fn(i);
    return;
  }
  const size_t workers = std::min(num_threads, num_items);
  std::atomic<size_t> next{0};
  auto worker = [&next, num_items, &fn] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_items) break;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();  // The calling thread participates.
  for (std::thread& thread : threads) thread.join();
}

}  // namespace ppsm
