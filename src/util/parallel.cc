#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "util/thread_pool.h"

namespace ppsm {

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ParallelFor(size_t num_threads, size_t num_items,
                 const std::function<void(size_t)>& fn) {
  if (num_items == 0) return;
  // Serial degradation: trivial shapes, and any call from inside a pool
  // task. A worker that blocked waiting for pool capacity it is itself
  // occupying could deadlock a saturated pool; running its loop serially is
  // always safe and leaves the query-level parallelism in charge.
  if (num_threads <= 1 || num_items == 1 || ThreadPool::InWorkerThread()) {
    for (size_t i = 0; i < num_items; ++i) fn(i);
    return;
  }

  ThreadPool& pool = ThreadPool::Shared();
  // The calling thread participates, so only workers-1 helpers are needed;
  // more helpers than pool threads would just queue behind each other.
  const size_t helpers =
      std::min(std::min(num_threads, num_items) - 1, pool.num_threads());

  // Shared between the caller and the helper tasks. Heap-allocated because
  // a helper may outlive the caller's *loop* (never its frame: the caller
  // blocks below until every helper finished).
  struct State {
    std::atomic<size_t> next{0};
    size_t completed = 0;  // Helpers done, guarded by mu.
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();

  const auto drain = [&state, num_items, &fn] {
    while (true) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_items) break;
      fn(i);
    }
  };
  for (size_t t = 0; t < helpers; ++t) {
    pool.Submit([state, &drain] {
      drain();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->completed;
      }
      state->cv.notify_one();
    });
  }

  drain();

  // Wait for the helpers — they may still be mid-item, and `fn` references
  // the caller's stack. While any helper is still *queued* (stuck behind
  // unrelated pool work, e.g. other queries' tasks), steal and run pending
  // tasks instead of sleeping; once the queues are empty every helper has
  // started and will signal completion.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->completed == helpers) return;
    }
    if (pool.TryRunPendingTask()) continue;
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->completed == helpers; });
    return;
  }
}

std::vector<std::pair<size_t, size_t>> SplitIntoChunks(size_t num_items,
                                                       size_t num_threads,
                                                       size_t min_chunk) {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (num_items == 0) return chunks;
  if (min_chunk == 0) min_chunk = 1;
  if (num_threads == 0) num_threads = 1;
  // Four chunks per worker gives the atomic item counter room to balance
  // uneven chunk costs without shrinking chunks into bookkeeping noise.
  const size_t target = num_threads * 4;
  size_t chunk = (num_items + target - 1) / target;
  if (chunk < min_chunk) chunk = min_chunk;
  chunks.reserve((num_items + chunk - 1) / chunk);
  for (size_t begin = 0; begin < num_items; begin += chunk) {
    chunks.emplace_back(begin, std::min(begin + chunk, num_items));
  }
  return chunks;
}

void ParallelForChunks(
    size_t num_threads, size_t num_items, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const auto chunks = SplitIntoChunks(num_items, num_threads, min_chunk);
  ParallelFor(num_threads, chunks.size(), [&](size_t c) {
    fn(c, chunks[c].first, chunks[c].second);
  });
}

}  // namespace ppsm
