#ifndef PPSM_UTIL_PARALLEL_H_
#define PPSM_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace ppsm {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Runs fn(0) .. fn(num_items-1) across up to `num_threads` workers drawn
/// from ThreadPool::Shared() — no per-call thread spawn/join. Items are
/// claimed from an atomic counter, so uneven item costs balance out (star
/// match sets vary wildly in size). Blocks until every item completed.
/// Degrades to a serial loop when num_threads <= 1, num_items <= 1, or when
/// called from inside a pool task (nested parallelism must not block pool
/// capacity the caller itself occupies). `fn` must be safe to invoke
/// concurrently on distinct indices and must not throw.
void ParallelFor(size_t num_threads, size_t num_items,
                 const std::function<void(size_t)>& fn);

/// Splits [0, num_items) into contiguous [begin, end) ranges for chunked
/// parallel loops that want one output buffer per chunk (concatenating the
/// buffers in chunk order keeps results deterministic). Aims for a few
/// chunks per worker so uneven chunk costs still balance, but never makes a
/// chunk smaller than `min_chunk` — below that the per-chunk bookkeeping
/// outweighs the work. Returns at least one chunk when num_items > 0.
std::vector<std::pair<size_t, size_t>> SplitIntoChunks(size_t num_items,
                                                       size_t num_threads,
                                                       size_t min_chunk);

/// ParallelFor over SplitIntoChunks: fn(chunk_index, begin, end) for each
/// range. Same degradation and safety contract as ParallelFor. Returns the
/// chunk list so callers can size per-chunk result buffers beforehand (call
/// SplitIntoChunks directly for that; this overload is the fire-and-forget
/// form).
void ParallelForChunks(
    size_t num_threads, size_t num_items, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace ppsm

#endif  // PPSM_UTIL_PARALLEL_H_
