#ifndef PPSM_UTIL_PARALLEL_H_
#define PPSM_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace ppsm {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Runs fn(0) .. fn(num_items-1) across up to `num_threads` worker threads
/// (atomic work-stealing counter, so uneven item costs balance out — star
/// match sets vary wildly in size). Blocks until every item completed.
/// num_threads <= 1 or num_items <= 1 degrades to a serial loop. `fn` must
/// be safe to invoke concurrently on distinct indices and must not throw.
void ParallelFor(size_t num_threads, size_t num_items,
                 const std::function<void(size_t)>& fn);

}  // namespace ppsm

#endif  // PPSM_UTIL_PARALLEL_H_
