#ifndef PPSM_UTIL_PARALLEL_H_
#define PPSM_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace ppsm {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Runs fn(0) .. fn(num_items-1) across up to `num_threads` workers drawn
/// from ThreadPool::Shared() — no per-call thread spawn/join. Items are
/// claimed from an atomic counter, so uneven item costs balance out (star
/// match sets vary wildly in size). Blocks until every item completed.
/// Degrades to a serial loop when num_threads <= 1, num_items <= 1, or when
/// called from inside a pool task (nested parallelism must not block pool
/// capacity the caller itself occupies). `fn` must be safe to invoke
/// concurrently on distinct indices and must not throw.
void ParallelFor(size_t num_threads, size_t num_items,
                 const std::function<void(size_t)>& fn);

}  // namespace ppsm

#endif  // PPSM_UTIL_PARALLEL_H_
