#ifndef PPSM_UTIL_RANDOM_H_
#define PPSM_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ppsm {

/// SplitMix64: used to seed other generators and for one-shot hashing of
/// seeds. Passes BigCrush; one multiply-xorshift round per output.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — the library's workhorse PRNG. Deterministic given a seed,
/// which keeps every generator, partitioner tiebreak and benchmark workload
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Uniform over the full 64-bit range.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(NextUint64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextUint64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = Below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[Below(items.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int s) {
    return (x << s) | (x >> (64 - s));
  }

  uint64_t state_[4];
};

}  // namespace ppsm

#endif  // PPSM_UTIL_RANDOM_H_
