#include "util/intersect.h"

#include <algorithm>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PPSM_INTERSECT_X86 1
#endif

namespace ppsm {

namespace {

/// --------------------------------------------------------------------------
/// Scalar merge
/// --------------------------------------------------------------------------

size_t MergeIntersect(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[count++] = x;
      ++i;
      ++j;
    }
  }
  return count;
}

/// --------------------------------------------------------------------------
/// Galloping
/// --------------------------------------------------------------------------

/// First index >= start with b[index] >= v (or b.size()): exponential probe
/// doubling from `start`, then binary search inside the final bracket. The
/// probe is O(log(distance)), so a run of misses in a huge adjacency costs
/// log, not linear.
size_t GallopLowerBound(std::span<const uint32_t> b, size_t start,
                        uint32_t v) {
  if (start >= b.size() || b[start] >= v) return start;
  // Invariant from here: b[low] < v.
  size_t low = start;
  size_t step = 1;
  while (low + step < b.size() && b[low + step] < v) {
    low += step;
    step <<= 1;
  }
  size_t hi = std::min(low + step, b.size());  // hi == size or b[hi] >= v.
  while (low + 1 < hi) {
    const size_t mid = low + (hi - low) / 2;
    if (b[mid] < v) {
      low = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

size_t GallopIntersect(std::span<const uint32_t> small,
                       std::span<const uint32_t> large, uint32_t* out) {
  size_t count = 0;
  size_t pos = 0;
  for (const uint32_t v : small) {
    pos = GallopLowerBound(large, pos, v);
    if (pos == large.size()) break;
    if (large[pos] == v) {
      out[count++] = v;
      ++pos;
    }
  }
  return count;
}

/// --------------------------------------------------------------------------
/// SIMD (x86 only; runtime-dispatched so the default build needs no -march)
/// --------------------------------------------------------------------------

#ifdef PPSM_INTERSECT_X86

bool DetectSse() {
  return __builtin_cpu_supports("ssse3") != 0;
}
bool DetectAvx2() {
  return __builtin_cpu_supports("avx2") != 0;
}

/// mask (4 bits, one per 32-bit lane) -> byte shuffle compacting the
/// selected lanes of an __m128i to the front. Unselected output bytes read
/// lane 0 — garbage beyond the popcount, which the contract allows.
struct SseShuffleTable {
  alignas(16) uint8_t bytes[16][16];
  SseShuffleTable() {
    for (int mask = 0; mask < 16; ++mask) {
      int k = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((mask >> lane) & 1) {
          for (int byte = 0; byte < 4; ++byte) {
            bytes[mask][4 * k + byte] = static_cast<uint8_t>(4 * lane + byte);
          }
          ++k;
        }
      }
      for (; k < 4; ++k) {
        for (int byte = 0; byte < 4; ++byte) bytes[mask][4 * k + byte] = 0;
      }
    }
  }
};

/// mask (8 bits) -> lane permutation for _mm256_permutevar8x32_epi32.
struct Avx2PermuteTable {
  alignas(32) uint32_t lanes[256][8];
  Avx2PermuteTable() {
    for (int mask = 0; mask < 256; ++mask) {
      int k = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if ((mask >> lane) & 1) lanes[mask][k++] = static_cast<uint32_t>(lane);
      }
      for (; k < 8; ++k) lanes[mask][k] = 0;
    }
  }
};

/// 4-wide block intersection (Schlegel/Katsogridakis-style "shuffling"): each
/// 4-element block of `a` is compared against all cyclic rotations of the
/// current 4-element block of `b`, matches are compacted with a shuffle
/// lookup, and the block whose maximum is smaller advances. Stores whole
/// 16-byte blocks, hence the kIntersectSlack padding in the contract.
__attribute__((target("ssse3"))) size_t SseIntersect(const uint32_t* a,
                                                     size_t na,
                                                     const uint32_t* b,
                                                     size_t nb,
                                                     uint32_t* out) {
  static const SseShuffleTable table;
  size_t i = 0, j = 0, count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
    const __m128i shuffle = _mm_load_si128(
        reinterpret_cast<const __m128i*>(table.bytes[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count),
                     _mm_shuffle_epi8(va, shuffle));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
    const uint32_t amax = a[i + 3];
    const uint32_t bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return count + MergeIntersect(a + i, na - i, b + j, nb - j, out + count);
}

/// 8-wide AVX2 variant of SseIntersect; rotations go through
/// _mm256_permutevar8x32_epi32 (cross-lane), compaction through the 256-entry
/// permute table.
__attribute__((target("avx2"))) size_t Avx2Intersect(const uint32_t* a,
                                                     size_t na,
                                                     const uint32_t* b,
                                                     size_t nb,
                                                     uint32_t* out) {
  static const Avx2PermuteTable table;
  alignas(32) static const uint32_t kRotations[8][8] = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {1, 2, 3, 4, 5, 6, 7, 0},
      {2, 3, 4, 5, 6, 7, 0, 1}, {3, 4, 5, 6, 7, 0, 1, 2},
      {4, 5, 6, 7, 0, 1, 2, 3}, {5, 6, 7, 0, 1, 2, 3, 4},
      {6, 7, 0, 1, 2, 3, 4, 5}, {7, 0, 1, 2, 3, 4, 5, 6}};
  size_t i = 0, j = 0, count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i rot = _mm256_permutevar8x32_epi32(
          vb, _mm256_load_si256(
                  reinterpret_cast<const __m256i*>(kRotations[r])));
      cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, rot));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(table.lanes[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count),
                        _mm256_permutevar8x32_epi32(va, perm));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
    const uint32_t amax = a[i + 7];
    const uint32_t bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  return count + MergeIntersect(a + i, na - i, b + j, nb - j, out + count);
}

#endif  // PPSM_INTERSECT_X86

bool Avx2Available() {
#ifdef PPSM_INTERSECT_X86
  static const bool available = DetectAvx2();
  return available;
#else
  return false;
#endif
}

/// ---------------------------------------------------------------------------
/// Kernel choice (the §5.1 cost model, extended with per-kernel constants)
/// ---------------------------------------------------------------------------
///
/// Per-element costs measured on the bench_micro kernel sweep (BM_Intersect*,
/// bench_results/BENCH_aux.json documents the run): the merge touches every
/// element of both sides (~1 cmp/el), SIMD amortizes that to ~1/4-1/8 once
/// blocks fill, and galloping pays ~log2(M/m) probes per element of the
/// smaller side only. Equating m*log2(M) against (m+M)/width puts the
/// galloping crossover near M/m = 32 for CSR-sized inputs; below it,
/// balanced inputs of at least two SIMD blocks go vectorized.
constexpr size_t kGallopSizeRatio = 32;
constexpr size_t kSimdMinSmaller = 16;

IntersectKernel ChooseKernel(size_t smaller, size_t larger) {
  if (smaller == 0) return IntersectKernel::kScalar;
  if (larger / smaller >= kGallopSizeRatio) return IntersectKernel::kGalloping;
  if (SimdIntersectAvailable() && smaller >= kSimdMinSmaller) {
    return IntersectKernel::kSimd;
  }
  return IntersectKernel::kScalar;
}

}  // namespace

const char* IntersectKernelName(IntersectKernel kernel) {
  switch (kernel) {
    case IntersectKernel::kAuto:
      return "auto";
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kGalloping:
      return "galloping";
    case IntersectKernel::kSimd:
      return "simd";
  }
  return "auto";
}

Result<IntersectKernel> ParseIntersectKernel(std::string_view name) {
  if (name == "auto") return IntersectKernel::kAuto;
  if (name == "scalar") return IntersectKernel::kScalar;
  if (name == "galloping") return IntersectKernel::kGalloping;
  if (name == "simd") return IntersectKernel::kSimd;
  return Status::InvalidArgument("unknown intersect kernel '" +
                                 std::string(name) +
                                 "' (want auto|scalar|galloping|simd)");
}

bool SimdIntersectAvailable() {
#ifdef PPSM_INTERSECT_X86
  static const bool available = DetectSse();
  return available;
#else
  return false;
#endif
}

size_t IntersectScalar(std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint32_t* out) {
  return MergeIntersect(a.data(), a.size(), b.data(), b.size(), out);
}

size_t IntersectGalloping(std::span<const uint32_t> a,
                          std::span<const uint32_t> b, uint32_t* out) {
  if (a.size() <= b.size()) return GallopIntersect(a, b, out);
  return GallopIntersect(b, a, out);
}

size_t IntersectSimd(std::span<const uint32_t> a, std::span<const uint32_t> b,
                     uint32_t* out) {
#ifdef PPSM_INTERSECT_X86
  if (Avx2Available()) {
    return Avx2Intersect(a.data(), a.size(), b.data(), b.size(), out);
  }
  if (SimdIntersectAvailable()) {
    return SseIntersect(a.data(), a.size(), b.data(), b.size(), out);
  }
#endif
  return MergeIntersect(a.data(), a.size(), b.data(), b.size(), out);
}

size_t IntersectSorted(std::span<const uint32_t> a,
                       std::span<const uint32_t> b, uint32_t* out,
                       IntersectKernel kernel, IntersectCounters* counters) {
  if (kernel == IntersectKernel::kAuto) {
    kernel = ChooseKernel(std::min(a.size(), b.size()),
                          std::max(a.size(), b.size()));
  }
  if (kernel == IntersectKernel::kSimd && !SimdIntersectAvailable()) {
    kernel = IntersectKernel::kScalar;  // Count what actually ran.
  }
  switch (kernel) {
    case IntersectKernel::kGalloping:
      if (counters != nullptr) ++counters->galloping;
      return IntersectGalloping(a, b, out);
    case IntersectKernel::kSimd:
      if (counters != nullptr) ++counters->simd;
      return IntersectSimd(a, b, out);
    case IntersectKernel::kAuto:  // Unreachable; resolved above.
    case IntersectKernel::kScalar:
      break;
  }
  if (counters != nullptr) ++counters->scalar;
  return IntersectScalar(a, b, out);
}

void IntersectInto(std::span<const uint32_t> a, std::span<const uint32_t> b,
                   std::vector<uint32_t>* out, IntersectKernel kernel,
                   IntersectCounters* counters) {
  out->resize(std::min(a.size(), b.size()) + kIntersectSlack);
  const size_t count = IntersectSorted(a, b, out->data(), kernel, counters);
  out->resize(count);
}

}  // namespace ppsm
