#ifndef PPSM_UTIL_BITVECTOR_H_
#define PPSM_UTIL_BITVECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ppsm {

/// Fixed-width bit vector backing the VBV / LBV index structures (paper
/// §4.2.1 Fig. 7). Sized at construction; supports the bulk bitwise ops the
/// star-matching algorithm needs (AND, subset test, set-bit scan) at
/// word-at-a-time speed.
class BitVector {
 public:
  BitVector() = default;
  /// All-zero vector of `num_bits` bits.
  explicit BitVector(size_t num_bits);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  /// Sets bit `i` (to `value`). `i` must be < size().
  void Set(size_t i, bool value = true);
  /// Reads bit `i`. `i` must be < size().
  bool Test(size_t i) const;
  /// Clears all bits.
  void Reset();
  /// Sets all bits, word-at-a-time (the unconstrained-candidate fallback of
  /// CloudIndex::CandidateCenters — a per-bit loop there is O(n) pointless
  /// read-modify-writes).
  void SetAll();

  /// Number of set bits.
  size_t Count() const;
  /// True iff no bit is set.
  bool None() const { return Count() == 0; }
  /// True iff at least one bit is set.
  bool Any() const { return !None(); }

  /// this &= other. Sizes must match.
  BitVector& operator&=(const BitVector& other);
  /// this |= other. Sizes must match.
  BitVector& operator|=(const BitVector& other);

  /// True iff every set bit of `other` is also set in *this
  /// (i.e. (*this & other) == other — line 6 of Algorithm 1).
  bool Contains(const BitVector& other) const;

  /// Invokes `fn(i)` for every set bit i, ascending.
  void ForEachSetBit(const std::function<void(size_t)>& fn) const;

  /// Set bits as a vector, ascending.
  std::vector<size_t> ToIndices() const;

  /// Heap footprint in bytes (for index-size accounting, paper Fig. 13).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// "0101..." string, LSB (bit 0) first. For tests and debugging.
  std::string ToString() const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  friend BitVector operator&(BitVector a, const BitVector& b) {
    a &= b;
    return a;
  }
  friend BitVector operator|(BitVector a, const BitVector& b) {
    a |= b;
    return a;
  }

 private:
  static constexpr size_t kWordBits = 64;

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ppsm

#endif  // PPSM_UTIL_BITVECTOR_H_
