#ifndef PPSM_UTIL_LOGGING_H_
#define PPSM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace ppsm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded. Defaults to
/// kInfo. Benchmarks raise it to kWarning to keep table output clean.
/// The PPSM_LOG_LEVEL environment variable (DEBUG|INFO|WARNING|ERROR, read
/// once at first use) overrides both the default and any SetLogLevel call,
/// so verbosity is controllable without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line: flushes "[LEVEL] message\n" to stderr on
/// destruction if `level` passes the global threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing. Used by PPSM_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ppsm

#define PPSM_LOG(level)                                              \
  ::ppsm::internal_logging::LogMessage(::ppsm::LogLevel::k##level, \
                                       __FILE__, __LINE__)

/// Invariant check that stays on in release builds. Use for conditions whose
/// violation means corrupted state that must not propagate (the DB-engine
/// convention: crash early rather than serve wrong answers).
#define PPSM_CHECK(condition)                                            \
  for (bool _ppsm_ok = static_cast<bool>(condition); !_ppsm_ok;          \
       _ppsm_ok = true)                                                  \
  ::ppsm::internal_logging::FatalLogMessage(__FILE__, __LINE__, #condition)

/// Aborts (with the embedded Status message) if a Status/Result expression
/// is not OK. For call sites where failure is a programming error, not an
/// input error.
#define PPSM_CHECK_OK(expr)                                                 \
  do {                                                                      \
    const auto& _ppsm_check_ok_value = (expr);                              \
    if (!_ppsm_check_ok_value.ok()) {                                       \
      ::ppsm::internal_logging::FatalLogMessage(__FILE__, __LINE__, #expr)  \
          << ::ppsm::GetStatus(_ppsm_check_ok_value).ToString();            \
    }                                                                       \
  } while (false)

#endif  // PPSM_UTIL_LOGGING_H_
