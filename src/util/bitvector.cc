#include "util/bitvector.h"

#include <bit>
#include <cassert>

namespace ppsm {

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + kWordBits - 1) / kWordBits, 0) {}

void BitVector::Set(size_t i, bool value) {
  assert(i < num_bits_);
  const uint64_t mask = uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

bool BitVector::Test(size_t i) const {
  assert(i < num_bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

void BitVector::Reset() {
  for (auto& w : words_) w = 0;
}

void BitVector::SetAll() {
  if (words_.empty()) return;
  for (auto& w : words_) w = ~uint64_t{0};
  // Keep the unused high bits of the last word zero so Count(), ==, and
  // Contains() stay consistent with per-bit Set calls.
  const size_t tail = num_bits_ % kWordBits;
  if (tail != 0) words_.back() = (uint64_t{1} << tail) - 1;
}

size_t BitVector::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool BitVector::Contains(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != other.words_[i]) return false;
  }
  return true;
}

void BitVector::ForEachSetBit(const std::function<void(size_t)>& fn) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      fn(wi * kWordBits + static_cast<size_t>(bit));
      w &= w - 1;  // Clear lowest set bit.
    }
  }
}

std::vector<size_t> BitVector::ToIndices() const {
  std::vector<size_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](size_t i) { out.push_back(i); });
  return out;
}

std::string BitVector::ToString() const {
  std::string s(num_bits_, '0');
  ForEachSetBit([&s](size_t i) { s[i] = '1'; });
  return s;
}

}  // namespace ppsm
