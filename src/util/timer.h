#ifndef PPSM_UTIL_TIMER_H_
#define PPSM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ppsm {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses to report
/// the same time columns the paper's tables use (milliseconds end-to-end).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double (milliseconds) on destruction.
/// Useful to attribute wall time to pipeline stages without littering the
/// code with timer bookkeeping.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(double* sink) : sink_(sink) {}
  ~ScopedTimerMs() { *sink_ += timer_.ElapsedMillis(); }

  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace ppsm

#endif  // PPSM_UTIL_TIMER_H_
