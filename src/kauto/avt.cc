#include "kauto/avt.h"

#include <cassert>

#include "graph/serialize.h"

namespace ppsm {

namespace {
constexpr uint32_t kAvtMagic = 0x31545641;  // "AVT1"
}  // namespace

Avt::Avt(uint32_t k, uint32_t num_rows)
    : k_(k),
      num_rows_(num_rows),
      cells_(static_cast<size_t>(k) * num_rows, kInvalidVertex),
      position_(static_cast<size_t>(k) * num_rows, kInvalidPosition) {
  assert(k >= 1);
}

void Avt::Place(uint32_t row, uint32_t block, VertexId v) {
  assert(row < num_rows_ && block < k_);
  assert(v < position_.size());
  const size_t cell = CellIndex(row, block);
  assert(cells_[cell] == kInvalidVertex && "cell already filled");
  assert(position_[v] == kInvalidPosition && "vertex already placed");
  cells_[cell] = v;
  position_[v] = cell;
}

VertexId Avt::At(uint32_t row, uint32_t block) const {
  assert(row < num_rows_ && block < k_);
  return cells_[CellIndex(row, block)];
}

uint32_t Avt::RowOf(VertexId v) const {
  assert(Contains(v));
  return static_cast<uint32_t>(position_[v] / k_);
}

uint32_t Avt::BlockOf(VertexId v) const {
  assert(Contains(v));
  return static_cast<uint32_t>(position_[v] % k_);
}

bool Avt::Contains(VertexId v) const {
  return v < position_.size() && position_[v] != kInvalidPosition;
}

VertexId Avt::Apply(VertexId v, uint32_t m) const {
  assert(Contains(v));
  const uint64_t pos = position_[v];
  const auto row = static_cast<uint32_t>(pos / k_);
  const auto block = static_cast<uint32_t>(pos % k_);
  return cells_[CellIndex(row, (block + m) % k_)];
}

std::vector<VertexId> Avt::ApplyToMatch(std::span<const VertexId> match,
                                        uint32_t m) const {
  std::vector<VertexId> out;
  out.reserve(match.size());
  for (const VertexId v : match) out.push_back(Apply(v, m));
  return out;
}

std::vector<VertexId> Avt::BlockVertices(uint32_t block) const {
  assert(block < k_);
  std::vector<VertexId> out;
  out.reserve(num_rows_);
  for (uint32_t r = 0; r < num_rows_; ++r) out.push_back(At(r, block));
  return out;
}

Status Avt::Validate() const {
  std::vector<bool> seen(position_.size(), false);
  for (uint32_t r = 0; r < num_rows_; ++r) {
    for (uint32_t b = 0; b < k_; ++b) {
      const VertexId v = At(r, b);
      if (v == kInvalidVertex || v >= position_.size()) {
        return Status::FailedPrecondition("AVT cell unfilled or out of range");
      }
      if (seen[v]) {
        return Status::FailedPrecondition("vertex appears twice in AVT");
      }
      seen[v] = true;
      if (position_[v] != CellIndex(r, b)) {
        return Status::Internal("AVT inverse map disagrees with cells");
      }
    }
  }
  return Status::OK();
}

std::vector<uint8_t> Avt::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kAvtMagic);
  writer.PutVarint(k_);
  writer.PutVarint(num_rows_);
  for (const VertexId v : cells_) writer.PutVarint(v);
  return writer.TakeBytes();
}

Result<Avt> Avt::Deserialize(std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kAvtMagic) return Status::InvalidArgument("bad AVT magic");
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_rows, reader.GetVarint());
  if (k == 0 || k > UINT32_MAX || num_rows > UINT32_MAX ||
      k * num_rows > reader.remaining()) {
    // Every cell is at least one varint byte; reject forged dimensions
    // before allocating k * num_rows cells.
    return Status::InvalidArgument("bad AVT dimensions");
  }
  Avt avt(static_cast<uint32_t>(k), static_cast<uint32_t>(num_rows));
  for (uint32_t r = 0; r < avt.num_rows(); ++r) {
    for (uint32_t b = 0; b < avt.k(); ++b) {
      PPSM_ASSIGN_OR_RETURN(const uint64_t v, reader.GetVarint());
      if (v >= avt.position_.size()) {
        return Status::InvalidArgument("AVT vertex id out of range");
      }
      if (avt.position_[v] != kInvalidPosition) {
        return Status::InvalidArgument("AVT vertex repeated");
      }
      avt.Place(r, b, static_cast<VertexId>(v));
    }
  }
  PPSM_RETURN_IF_ERROR(avt.Validate());
  return avt;
}

}  // namespace ppsm
