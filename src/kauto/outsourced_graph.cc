#include "kauto/outsourced_graph.h"

#include <algorithm>

#include "graph/serialize.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/parallel_sort.h"

namespace ppsm {

namespace {
constexpr uint32_t kGoMagic = 0x316f4750;  // "PGo1"
}  // namespace

Result<OutsourcedGraph> BuildOutsourcedGraph(const KAutomorphicGraph& kag,
                                             size_t num_threads) {
  const AttributedGraph& gk = kag.gk;
  const Avt& avt = kag.avt;
  const uint32_t k = avt.k();
  const size_t threads = num_threads == 0 ? 1 : num_threads;

  OutsourcedGraph go;
  go.k = k;
  std::vector<VertexId> gk_to_local(gk.NumVertices(), kInvalidVertex);

  // B1 first, in row order (so VBV bit positions are stable/deterministic).
  for (uint32_t r = 0; r < avt.num_rows(); ++r) {
    const VertexId v = avt.At(r, /*block=*/0);
    gk_to_local[v] = static_cast<VertexId>(go.to_gk.size());
    go.to_gk.push_back(v);
  }
  go.num_b1 = go.to_gk.size();

  // One-hop neighbors of B1 outside B1, in ascending Gk id order. Workers
  // scan disjoint slices of B1 into private buffers; sort+unique erases the
  // concatenation order, so the set is the same at every thread count.
  const auto chunks = SplitIntoChunks(go.num_b1, threads, 512);
  std::vector<std::vector<VertexId>> chunk_n1(chunks.size());
  ParallelFor(threads, chunks.size(), [&](size_t c) {
    std::vector<VertexId>& out = chunk_n1[c];
    for (size_t local = chunks[c].first; local < chunks[c].second; ++local) {
      for (const VertexId u : gk.Neighbors(go.to_gk[local])) {
        if (avt.BlockOf(u) != 0) out.push_back(u);
      }
    }
  });
  std::vector<VertexId> n1;
  for (const auto& chunk : chunk_n1) n1.insert(n1.end(), chunk.begin(), chunk.end());
  ParallelSortUnique(&n1, threads);
  for (const VertexId u : n1) {
    gk_to_local[u] = static_cast<VertexId>(go.to_gk.size());
    go.to_gk.push_back(u);
  }

  GraphBuilder builder;
  builder.ReserveVertices(go.to_gk.size());
  for (const VertexId gk_id : go.to_gk) {
    const auto types = gk.Types(gk_id);
    const auto labels = gk.Labels(gk_id);
    builder.AddVertex(
        std::vector<VertexTypeId>(types.begin(), types.end()),
        std::vector<LabelId>(labels.begin(), labels.end()));
  }
  // Edges incident to B1 only, each emitted exactly once (B1-B1 from the
  // lower Gk id, B1-N1 from the B1 endpoint), so the chunk batches are
  // duplicate-free. Chunk layout and concatenation order are fixed by
  // SplitIntoChunks, not by the thread count, keeping the edge order — and
  // the serialized Go — byte-identical at every value.
  std::vector<std::vector<uint64_t>> chunk_edges(chunks.size());
  ParallelFor(threads, chunks.size(), [&](size_t c) {
    std::vector<uint64_t>& out = chunk_edges[c];
    for (size_t local = chunks[c].first; local < chunks[c].second; ++local) {
      const VertexId v = go.to_gk[local];
      for (const VertexId u : gk.Neighbors(v)) {
        const bool u_in_b1 = avt.BlockOf(u) == 0;
        if (u_in_b1 && u < v) continue;  // B1-B1 edge handled from lower id.
        out.push_back(UndirectedEdgeKey(static_cast<VertexId>(local),
                                        gk_to_local[u]));
      }
    }
  });
  for (const auto& chunk : chunk_edges) builder.AddDedupedEdges(chunk);
  PPSM_ASSIGN_OR_RETURN(go.graph, builder.Build());
  return go;
}

std::vector<uint8_t> OutsourcedGraph::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kGoMagic);
  writer.PutVarint(k);
  writer.PutVarint(num_b1);
  writer.PutVarint(to_gk.size());
  for (const VertexId v : to_gk) writer.PutVarint(v);
  const std::vector<uint8_t> graph_bytes = SerializeGraph(graph);
  writer.PutVarint(graph_bytes.size());
  for (const uint8_t b : graph_bytes) writer.PutU8(b);
  return writer.TakeBytes();
}

Result<OutsourcedGraph> OutsourcedGraph::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kGoMagic) return Status::InvalidArgument("bad Go magic");
  OutsourcedGraph go;
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_b1, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_vertices, reader.GetVarint());
  if (k == 0 || num_b1 > num_vertices ||
      num_vertices > reader.remaining()) {
    // Each id costs at least one byte; forged counts must not reserve.
    return Status::InvalidArgument("bad Go header");
  }
  go.k = static_cast<uint32_t>(k);
  go.num_b1 = num_b1;
  go.to_gk.reserve(num_vertices);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t v, reader.GetVarint());
    if (v > UINT32_MAX) return Status::InvalidArgument("Gk id overflow");
    go.to_gk.push_back(static_cast<VertexId>(v));
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t graph_len, reader.GetVarint());
  if (graph_len > reader.remaining()) {
    return Status::OutOfRange("truncated Go graph payload");
  }
  std::vector<uint8_t> graph_bytes;
  graph_bytes.reserve(graph_len);
  for (uint64_t i = 0; i < graph_len; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint8_t b, reader.GetU8());
    graph_bytes.push_back(b);
  }
  PPSM_ASSIGN_OR_RETURN(go.graph,
                        DeserializeGraph(graph_bytes, /*schema=*/nullptr));
  if (go.graph.NumVertices() != go.to_gk.size()) {
    return Status::InvalidArgument("Go id map size mismatch");
  }
  return go;
}

}  // namespace ppsm
