#include "kauto/outsourced_graph.h"

#include <algorithm>

#include "graph/serialize.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/parallel_sort.h"

namespace ppsm {

namespace {
constexpr uint32_t kGoMagicV1 = 0x316f4750;  // "PGo1" — hops == 1 layout.
constexpr uint32_t kGoMagicV2 = 0x326f4750;  // "PGo2" — adds the hop radius.
}  // namespace

Result<OutsourcedGraph> BuildOutsourcedGraph(const KAutomorphicGraph& kag,
                                             size_t num_threads,
                                             uint32_t hops) {
  if (hops == 0) {
    return Status::InvalidArgument("Go extraction radius must be >= 1");
  }
  const AttributedGraph& gk = kag.gk;
  const Avt& avt = kag.avt;
  const uint32_t k = avt.k();
  const size_t threads = num_threads == 0 ? 1 : num_threads;

  OutsourcedGraph go;
  go.k = k;
  go.hops = hops;
  std::vector<VertexId> gk_to_local(gk.NumVertices(), kInvalidVertex);

  // B1 first, in row order (so VBV bit positions are stable/deterministic).
  for (uint32_t r = 0; r < avt.num_rows(); ++r) {
    const VertexId v = avt.At(r, /*block=*/0);
    gk_to_local[v] = static_cast<VertexId>(go.to_gk.size());
    go.to_gk.push_back(v);
  }
  go.num_b1 = go.to_gk.size();

  // Ring-by-ring BFS: ring h holds the vertices at distance exactly h from
  // B1, appended in ascending Gk id order — so B1 and ring 1 get the same
  // local ids at every radius, and hops == 1 lays out exactly the legacy
  // B1 + N1 graph. Workers scan disjoint slices of the previous ring into
  // private buffers; sort+unique erases the concatenation order, so the set
  // is the same at every thread count. Because local ids grow ring by ring,
  // distance is monotone in local id: dist(local) <= d iff local is below
  // the ring-d prefix.
  size_t ring_begin = 0;
  size_t ring_end = go.to_gk.size();
  for (uint32_t ring = 1; ring <= hops && ring_begin < ring_end; ++ring) {
    const auto ring_chunks =
        SplitIntoChunks(ring_end - ring_begin, threads, 512);
    std::vector<std::vector<VertexId>> chunk_frontier(ring_chunks.size());
    ParallelFor(threads, ring_chunks.size(), [&](size_t c) {
      std::vector<VertexId>& out = chunk_frontier[c];
      for (size_t i = ring_chunks[c].first; i < ring_chunks[c].second; ++i) {
        for (const VertexId u : gk.Neighbors(go.to_gk[ring_begin + i])) {
          if (gk_to_local[u] == kInvalidVertex) out.push_back(u);
        }
      }
    });
    std::vector<VertexId> frontier;
    for (const auto& chunk : chunk_frontier) {
      frontier.insert(frontier.end(), chunk.begin(), chunk.end());
    }
    ParallelSortUnique(&frontier, threads);
    ring_begin = ring_end;
    for (const VertexId u : frontier) {
      gk_to_local[u] = static_cast<VertexId>(go.to_gk.size());
      go.to_gk.push_back(u);
    }
    ring_end = go.to_gk.size();
  }

  GraphBuilder builder;
  builder.ReserveVertices(go.to_gk.size());
  for (const VertexId gk_id : go.to_gk) {
    const auto types = gk.Types(gk_id);
    const auto labels = gk.Labels(gk_id);
    builder.AddVertex(
        std::vector<VertexTypeId>(types.begin(), types.end()),
        std::vector<LabelId>(labels.begin(), labels.end()));
  }
  // Edges with an endpoint within hops - 1 of B1 only (at hops == 1:
  // incident to B1), each emitted exactly once — when both endpoints are
  // inside the emitting prefix, from the lower Gk id; otherwise from the
  // prefix endpoint — so the chunk batches are duplicate-free. Every such
  // edge's far endpoint is within `hops`, hence in the vertex set. Chunk
  // layout and concatenation order are fixed by SplitIntoChunks, not by the
  // thread count, keeping the edge order — and the serialized Go —
  // byte-identical at every value.
  size_t emit_prefix = go.num_b1;  // Locals with dist <= hops - 1.
  if (hops >= 2) {
    emit_prefix = go.to_gk.size();
    // The last ring (distance == hops) never emits; everything before does.
    if (ring_end > ring_begin) emit_prefix = ring_begin;
  }
  const auto chunks = SplitIntoChunks(emit_prefix, threads, 512);
  std::vector<std::vector<uint64_t>> chunk_edges(chunks.size());
  ParallelFor(threads, chunks.size(), [&](size_t c) {
    std::vector<uint64_t>& out = chunk_edges[c];
    for (size_t local = chunks[c].first; local < chunks[c].second; ++local) {
      const VertexId v = go.to_gk[local];
      for (const VertexId u : gk.Neighbors(v)) {
        const bool u_emits = gk_to_local[u] < emit_prefix;
        if (u_emits && u < v) continue;  // Both emit: lower Gk id handles it.
        out.push_back(UndirectedEdgeKey(static_cast<VertexId>(local),
                                        gk_to_local[u]));
      }
    }
  });
  for (const auto& chunk : chunk_edges) builder.AddDedupedEdges(chunk);
  PPSM_ASSIGN_OR_RETURN(go.graph, builder.Build());
  return go;
}

std::vector<uint8_t> OutsourcedGraph::Serialize() const {
  BinaryWriter writer;
  // hops == 1 keeps the legacy layout so existing snapshots, uploads and
  // their checksums stay byte-identical; only deeper radii need the field.
  if (hops <= 1) {
    writer.PutU32(kGoMagicV1);
  } else {
    writer.PutU32(kGoMagicV2);
    writer.PutVarint(hops);
  }
  writer.PutVarint(k);
  writer.PutVarint(num_b1);
  writer.PutVarint(to_gk.size());
  for (const VertexId v : to_gk) writer.PutVarint(v);
  const std::vector<uint8_t> graph_bytes = SerializeGraph(graph);
  writer.PutVarint(graph_bytes.size());
  for (const uint8_t b : graph_bytes) writer.PutU8(b);
  return writer.TakeBytes();
}

Result<OutsourcedGraph> OutsourcedGraph::Deserialize(
    std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  PPSM_ASSIGN_OR_RETURN(const uint32_t magic, reader.GetU32());
  if (magic != kGoMagicV1 && magic != kGoMagicV2) {
    return Status::InvalidArgument("bad Go magic");
  }
  OutsourcedGraph go;
  if (magic == kGoMagicV2) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t hops, reader.GetVarint());
    if (hops < 2 || hops > UINT32_MAX) {
      // v2 exists only for deeper radii; a radius-1 payload must be v1.
      return Status::InvalidArgument("bad Go hop radius");
    }
    go.hops = static_cast<uint32_t>(hops);
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t k, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_b1, reader.GetVarint());
  PPSM_ASSIGN_OR_RETURN(const uint64_t num_vertices, reader.GetVarint());
  if (k == 0 || num_b1 > num_vertices ||
      num_vertices > reader.remaining()) {
    // Each id costs at least one byte; forged counts must not reserve.
    return Status::InvalidArgument("bad Go header");
  }
  go.k = static_cast<uint32_t>(k);
  go.num_b1 = num_b1;
  go.to_gk.reserve(num_vertices);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint64_t v, reader.GetVarint());
    if (v > UINT32_MAX) return Status::InvalidArgument("Gk id overflow");
    go.to_gk.push_back(static_cast<VertexId>(v));
  }
  PPSM_ASSIGN_OR_RETURN(const uint64_t graph_len, reader.GetVarint());
  if (graph_len > reader.remaining()) {
    return Status::OutOfRange("truncated Go graph payload");
  }
  std::vector<uint8_t> graph_bytes;
  graph_bytes.reserve(graph_len);
  for (uint64_t i = 0; i < graph_len; ++i) {
    PPSM_ASSIGN_OR_RETURN(const uint8_t b, reader.GetU8());
    graph_bytes.push_back(b);
  }
  PPSM_ASSIGN_OR_RETURN(go.graph,
                        DeserializeGraph(graph_bytes, /*schema=*/nullptr));
  if (go.graph.NumVertices() != go.to_gk.size()) {
    return Status::InvalidArgument("Go id map size mismatch");
  }
  return go;
}

}  // namespace ppsm
