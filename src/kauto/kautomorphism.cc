#include "kauto/kautomorphism.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "obs/trace.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/parallel_sort.h"

namespace ppsm {

namespace {

/// Orders a block's members by (primary type, degree desc, id): hubs align
/// with hubs of the same type across blocks.
std::vector<VertexId> OrderByTypeDegree(const AttributedGraph& graph,
                                        std::vector<VertexId> members) {
  std::sort(members.begin(), members.end(), [&](VertexId a, VertexId b) {
    const VertexTypeId ta = graph.PrimaryType(a);
    const VertexTypeId tb = graph.PrimaryType(b);
    if (ta != tb) return ta < tb;
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) > graph.Degree(b);
    }
    return a < b;
  });
  return members;
}

/// Orders a block by BFS over intra-block edges, rooted at the
/// highest-degree member; remaining components are seeded by degree.
std::vector<VertexId> OrderByBfs(const AttributedGraph& graph,
                                 const std::vector<uint32_t>& part,
                                 uint32_t block,
                                 std::vector<VertexId> members) {
  std::sort(members.begin(), members.end(), [&](VertexId a, VertexId b) {
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) > graph.Degree(b);
    }
    return a < b;
  });
  std::vector<bool> visited(graph.NumVertices(), false);
  std::vector<VertexId> order;
  order.reserve(members.size());
  for (const VertexId seed : members) {
    if (visited[seed]) continue;
    std::deque<VertexId> queue{seed};
    visited[seed] = true;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (const VertexId v : graph.Neighbors(u)) {
        if (!visited[v] && part[v] == block) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

Result<KAutomorphicGraph> BuildKAutomorphicGraph(
    const AttributedGraph& graph, const KAutomorphismOptions& options) {
  const uint32_t k = options.k;
  const size_t n = graph.NumVertices();
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (n == 0) return Status::InvalidArgument("cannot anonymize empty graph");
  if (k > n) {
    return Status::InvalidArgument(
        "k exceeds the number of vertices; every block would need noise "
        "rows");
  }

  // --- Step 1: partition into k blocks of size <= ceil(n/k). ---
  PartitionOptions popts = options.partition;
  popts.num_parts = k;
  Result<Partitioning> partitioning_or = [&] {
    PPSM_TRACE_SPAN_CAT("setup.kauto.partition", "setup");
    return PartitionGraph(graph, popts);
  }();
  PPSM_ASSIGN_OR_RETURN(const Partitioning partitioning,
                        std::move(partitioning_or));

  const auto rows = static_cast<uint32_t>((n + k - 1) / k);
  const size_t total_vertices = static_cast<size_t>(rows) * k;

  std::vector<std::vector<VertexId>> blocks(k);
  for (VertexId v = 0; v < n; ++v) {
    blocks[partitioning.part[v]].push_back(v);
  }

  // --- Step 2: order each block and pad with noise vertices. Blocks are
  // disjoint, so their orderings run concurrently; each ordering is a
  // deterministic function of its block, so the AVT is thread-count
  // independent. ---
  PPSM_TRACE_SPAN_CAT("setup.kauto.align_and_copy", "setup");
  const size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  ParallelFor(threads, k, [&](size_t b) {
    switch (options.alignment) {
      case AlignmentOrder::kTypeDegree:
        blocks[b] = OrderByTypeDegree(graph, std::move(blocks[b]));
        break;
      case AlignmentOrder::kBfs:
        blocks[b] = OrderByBfs(graph, partitioning.part,
                               static_cast<uint32_t>(b),
                               std::move(blocks[b]));
        break;
    }
  });
  auto next_noise = static_cast<VertexId>(n);
  for (uint32_t b = 0; b < k; ++b) {
    if (blocks[b].size() > rows) {
      return Status::Internal("partitioner produced an oversized block");
    }
    while (blocks[b].size() < rows) blocks[b].push_back(next_noise++);
  }
  assert(next_noise == total_vertices);

  Avt avt(k, rows);
  for (uint32_t b = 0; b < k; ++b) {
    for (uint32_t r = 0; r < rows; ++r) avt.Place(r, b, blocks[b][r]);
  }
  PPSM_RETURN_IF_ERROR(avt.Validate());

  // --- Step 3+4: block alignment and edge copy, as an orbit closure. ---
  // Intra-block edges become row patterns shared by all blocks; crossing
  // edges are replicated under all k shifts. Both are "close the original
  // edge set under F_1", expressed so each original edge costs O(k) keys.
  // This k× replication dominates setup for large k, so the edge scan runs
  // over contiguous vertex chunks into per-worker buffers; the final
  // sort/unique canonicalizes the key set, which makes the concatenation
  // order (and therefore the chunking and thread count) unobservable.
  std::vector<uint64_t> intra_patterns;  // (r1 << 32 | r2), r1 < r2.
  std::vector<uint64_t> edge_keys;
  {
    PPSM_TRACE_SPAN_CAT("setup.kauto.edge_closure", "setup");
    const auto chunks = SplitIntoChunks(n, threads, /*min_chunk=*/512);
    std::vector<std::vector<uint64_t>> chunk_intra(chunks.size());
    std::vector<std::vector<uint64_t>> chunk_cross(chunks.size());
    ParallelFor(threads, chunks.size(), [&](size_t c) {
      std::vector<uint64_t>& intra = chunk_intra[c];
      std::vector<uint64_t>& cross = chunk_cross[c];
      for (VertexId u = static_cast<VertexId>(chunks[c].first);
           u < chunks[c].second; ++u) {
        for (const VertexId v : graph.Neighbors(u)) {
          if (v <= u) continue;  // One direction per undirected edge.
          if (partitioning.part[u] == partitioning.part[v]) {
            const uint32_t r1 = avt.RowOf(u);
            const uint32_t r2 = avt.RowOf(v);
            intra.push_back(UndirectedEdgeKey(std::min(r1, r2),
                                              std::max(r1, r2)));
          } else {
            for (uint32_t m = 0; m < k; ++m) {
              cross.push_back(
                  UndirectedEdgeKey(avt.Apply(u, m), avt.Apply(v, m)));
            }
          }
        }
      }
    });
    size_t intra_total = 0;
    size_t cross_total = 0;
    for (size_t c = 0; c < chunks.size(); ++c) {
      intra_total += chunk_intra[c].size();
      cross_total += chunk_cross[c].size();
    }
    intra_patterns.reserve(intra_total);
    edge_keys.reserve(cross_total);  // Resized again for the intra expansion.
    for (size_t c = 0; c < chunks.size(); ++c) {
      intra_patterns.insert(intra_patterns.end(), chunk_intra[c].begin(),
                            chunk_intra[c].end());
      edge_keys.insert(edge_keys.end(), chunk_cross[c].begin(),
                       chunk_cross[c].end());
    }
    ParallelSortUnique(&intra_patterns, threads);
    // Each surviving pattern expands to exactly k keys, so the expansion
    // writes straight into a pre-sized tail at disjoint offsets.
    edge_keys.resize(cross_total + intra_patterns.size() * k);
    ParallelForChunks(
        threads, intra_patterns.size(), /*min_chunk=*/512,
        [&](size_t /*chunk*/, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            const auto r1 = static_cast<uint32_t>(intra_patterns[i] >> 32);
            const auto r2 = static_cast<uint32_t>(intra_patterns[i]);
            for (uint32_t b = 0; b < k; ++b) {
              edge_keys[cross_total + i * k + b] =
                  UndirectedEdgeKey(avt.At(r1, b), avt.At(r2, b));
            }
          }
        });
    ParallelSortUnique(&edge_keys, threads);
  }

  // --- Step 5: attribute union per AVT row (noise members contribute
  // nothing; every row has at least one real member since there are at most
  // k-1 noise vertices in total). Rows are independent, so the unions run
  // chunked across the pool. ---
  GraphBuilder builder;  // Schema-less: Gk rows mix types, labels may be
                         // group ids after anonymization.
  builder.ReserveVertices(total_vertices);
  std::vector<std::vector<VertexTypeId>> row_types(rows);
  std::vector<std::vector<LabelId>> row_labels(rows);
  ParallelForChunks(
      threads, rows, /*min_chunk=*/256,
      [&](size_t /*chunk*/, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          for (uint32_t b = 0; b < k; ++b) {
            const VertexId v = avt.At(static_cast<uint32_t>(r), b);
            if (v >= n) continue;  // Noise vertex.
            const auto types = graph.Types(v);
            const auto labels = graph.Labels(v);
            row_types[r].insert(row_types[r].end(), types.begin(),
                                types.end());
            row_labels[r].insert(row_labels[r].end(), labels.begin(),
                                 labels.end());
          }
        }
      });
  for (uint32_t r = 0; r < rows; ++r) {
    if (row_types[r].empty()) {
      return Status::Internal("AVT row with no original member");
    }
  }
  for (VertexId v = 0; v < total_vertices; ++v) {
    const uint32_t r = avt.RowOf(v);
    builder.AddVertex(row_types[r], row_labels[r]);  // Build() dedups/sorts.
  }
  builder.AddDedupedEdges(edge_keys);

  PPSM_ASSIGN_OR_RETURN(AttributedGraph gk, builder.Build());
  KAutomorphicGraph result;
  result.gk = std::move(gk);
  result.avt = std::move(avt);
  result.num_original_vertices = n;
  result.num_original_edges = graph.NumEdges();
  return result;
}

}  // namespace ppsm
