#include "kauto/kautomorphism.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "obs/trace.h"
#include "util/hash.h"

namespace ppsm {

namespace {

/// Orders a block's members by (primary type, degree desc, id): hubs align
/// with hubs of the same type across blocks.
std::vector<VertexId> OrderByTypeDegree(const AttributedGraph& graph,
                                        std::vector<VertexId> members) {
  std::sort(members.begin(), members.end(), [&](VertexId a, VertexId b) {
    const VertexTypeId ta = graph.PrimaryType(a);
    const VertexTypeId tb = graph.PrimaryType(b);
    if (ta != tb) return ta < tb;
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) > graph.Degree(b);
    }
    return a < b;
  });
  return members;
}

/// Orders a block by BFS over intra-block edges, rooted at the
/// highest-degree member; remaining components are seeded by degree.
std::vector<VertexId> OrderByBfs(const AttributedGraph& graph,
                                 const std::vector<uint32_t>& part,
                                 uint32_t block,
                                 std::vector<VertexId> members) {
  std::sort(members.begin(), members.end(), [&](VertexId a, VertexId b) {
    if (graph.Degree(a) != graph.Degree(b)) {
      return graph.Degree(a) > graph.Degree(b);
    }
    return a < b;
  });
  std::vector<bool> visited(graph.NumVertices(), false);
  std::vector<VertexId> order;
  order.reserve(members.size());
  for (const VertexId seed : members) {
    if (visited[seed]) continue;
    std::deque<VertexId> queue{seed};
    visited[seed] = true;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (const VertexId v : graph.Neighbors(u)) {
        if (!visited[v] && part[v] == block) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  return order;
}

}  // namespace

Result<KAutomorphicGraph> BuildKAutomorphicGraph(
    const AttributedGraph& graph, const KAutomorphismOptions& options) {
  const uint32_t k = options.k;
  const size_t n = graph.NumVertices();
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (n == 0) return Status::InvalidArgument("cannot anonymize empty graph");
  if (k > n) {
    return Status::InvalidArgument(
        "k exceeds the number of vertices; every block would need noise "
        "rows");
  }

  // --- Step 1: partition into k blocks of size <= ceil(n/k). ---
  PartitionOptions popts = options.partition;
  popts.num_parts = k;
  Result<Partitioning> partitioning_or = [&] {
    PPSM_TRACE_SPAN_CAT("setup.kauto.partition", "setup");
    return PartitionGraph(graph, popts);
  }();
  PPSM_ASSIGN_OR_RETURN(const Partitioning partitioning,
                        std::move(partitioning_or));

  const auto rows = static_cast<uint32_t>((n + k - 1) / k);
  const size_t total_vertices = static_cast<size_t>(rows) * k;

  std::vector<std::vector<VertexId>> blocks(k);
  for (VertexId v = 0; v < n; ++v) {
    blocks[partitioning.part[v]].push_back(v);
  }

  // --- Step 2: order each block and pad with noise vertices. ---
  PPSM_TRACE_SPAN_CAT("setup.kauto.align_and_copy", "setup");
  for (uint32_t b = 0; b < k; ++b) {
    switch (options.alignment) {
      case AlignmentOrder::kTypeDegree:
        blocks[b] = OrderByTypeDegree(graph, std::move(blocks[b]));
        break;
      case AlignmentOrder::kBfs:
        blocks[b] = OrderByBfs(graph, partitioning.part, b,
                               std::move(blocks[b]));
        break;
    }
  }
  auto next_noise = static_cast<VertexId>(n);
  for (uint32_t b = 0; b < k; ++b) {
    if (blocks[b].size() > rows) {
      return Status::Internal("partitioner produced an oversized block");
    }
    while (blocks[b].size() < rows) blocks[b].push_back(next_noise++);
  }
  assert(next_noise == total_vertices);

  Avt avt(k, rows);
  for (uint32_t b = 0; b < k; ++b) {
    for (uint32_t r = 0; r < rows; ++r) avt.Place(r, b, blocks[b][r]);
  }
  PPSM_RETURN_IF_ERROR(avt.Validate());

  // --- Step 3+4: block alignment and edge copy, as an orbit closure. ---
  // Intra-block edges become row patterns shared by all blocks; crossing
  // edges are replicated under all k shifts. Both are "close the original
  // edge set under F_1", expressed so each original edge costs O(k) keys.
  std::vector<uint64_t> intra_patterns;  // (r1 << 32 | r2), r1 < r2.
  std::vector<uint64_t> edge_keys;
  graph.ForEachEdge([&](VertexId u, VertexId v) {
    if (partitioning.part[u] == partitioning.part[v]) {
      const uint32_t r1 = avt.RowOf(u);
      const uint32_t r2 = avt.RowOf(v);
      intra_patterns.push_back(UndirectedEdgeKey(std::min(r1, r2),
                                                 std::max(r1, r2)));
    } else {
      for (uint32_t m = 0; m < k; ++m) {
        edge_keys.push_back(
            UndirectedEdgeKey(avt.Apply(u, m), avt.Apply(v, m)));
      }
    }
  });
  std::sort(intra_patterns.begin(), intra_patterns.end());
  intra_patterns.erase(
      std::unique(intra_patterns.begin(), intra_patterns.end()),
      intra_patterns.end());
  for (const uint64_t pattern : intra_patterns) {
    const auto r1 = static_cast<uint32_t>(pattern >> 32);
    const auto r2 = static_cast<uint32_t>(pattern);
    for (uint32_t b = 0; b < k; ++b) {
      edge_keys.push_back(UndirectedEdgeKey(avt.At(r1, b), avt.At(r2, b)));
    }
  }
  std::sort(edge_keys.begin(), edge_keys.end());
  edge_keys.erase(std::unique(edge_keys.begin(), edge_keys.end()),
                  edge_keys.end());

  // --- Step 5: attribute union per AVT row (noise members contribute
  // nothing; every row has at least one real member since there are at most
  // k-1 noise vertices in total). ---
  GraphBuilder builder;  // Schema-less: Gk rows mix types, labels may be
                         // group ids after anonymization.
  builder.ReserveVertices(total_vertices);
  std::vector<std::vector<VertexTypeId>> row_types(rows);
  std::vector<std::vector<LabelId>> row_labels(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t b = 0; b < k; ++b) {
      const VertexId v = avt.At(r, b);
      if (v >= n) continue;  // Noise vertex.
      const auto types = graph.Types(v);
      const auto labels = graph.Labels(v);
      row_types[r].insert(row_types[r].end(), types.begin(), types.end());
      row_labels[r].insert(row_labels[r].end(), labels.begin(), labels.end());
    }
    if (row_types[r].empty()) {
      return Status::Internal("AVT row with no original member");
    }
  }
  for (VertexId v = 0; v < total_vertices; ++v) {
    const uint32_t r = avt.RowOf(v);
    builder.AddVertex(row_types[r], row_labels[r]);  // Build() dedups/sorts.
  }
  for (const uint64_t key : edge_keys) {
    builder.AddEdgeUnchecked(static_cast<VertexId>(key >> 32),
                             static_cast<VertexId>(key));
  }

  PPSM_ASSIGN_OR_RETURN(AttributedGraph gk, builder.Build());
  KAutomorphicGraph result;
  result.gk = std::move(gk);
  result.avt = std::move(avt);
  result.num_original_vertices = n;
  result.num_original_edges = graph.NumEdges();
  return result;
}

}  // namespace ppsm
