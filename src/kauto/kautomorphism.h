#ifndef PPSM_KAUTO_KAUTOMORPHISM_H_
#define PPSM_KAUTO_KAUTOMORPHISM_H_

#include <cstdint>

#include "graph/attributed_graph.h"
#include "kauto/avt.h"
#include "partition/multilevel_partitioner.h"
#include "util/status.h"

namespace ppsm {

/// How vertices inside each block are ordered into AVT rows during block
/// alignment. The ordering decides which vertices become symmetric, which
/// drives both the noise-edge count and how uniform each row's type/label
/// signature is.
enum class AlignmentOrder {
  /// Sort by (primary type, degree desc, id): aligns same-type hubs with
  /// hubs. Default; keeps type sets near-singleton.
  kTypeDegree,
  /// BFS from the block's highest-degree vertex over intra-block edges
  /// (the "BFS strategy" the paper mentions in §6.2), grouping structurally
  /// close vertices.
  kBfs,
};

struct KAutomorphismOptions {
  /// The privacy parameter k >= 1 (k = 1 means "no anonymization").
  uint32_t k = 2;
  AlignmentOrder alignment = AlignmentOrder::kTypeDegree;
  /// Options for the METIS-substitute partitioner; num_parts is overridden
  /// with k.
  PartitionOptions partition;
  /// Workers for block ordering, the orbit-closure edge generation and the
  /// row attribute unions (drawn from ThreadPool::Shared()). The output is
  /// byte-identical for every value — see DESIGN.md §11.
  size_t num_threads = 1;
};

/// The output of the k-automorphism transform: Gk, its AVT, and provenance
/// counters. Vertex ids 0..num_original_vertices-1 in Gk are exactly the
/// vertices of G (no vertex or edge of G is ever dropped — Theorem 1 depends
/// on G being a subgraph of Gk); ids beyond that are noise vertices added to
/// equalize block sizes.
struct KAutomorphicGraph {
  AttributedGraph gk;
  Avt avt;
  size_t num_original_vertices = 0;
  size_t num_original_edges = 0;

  size_t NumNoiseVertices() const {
    return gk.NumVertices() - num_original_vertices;
  }
  size_t NumNoiseEdges() const { return gk.NumEdges() - num_original_edges; }
  bool IsOriginalVertex(VertexId v) const {
    return v < num_original_vertices;
  }
};

/// Transforms `graph` into a k-automorphic graph (paper §2.2, reimplementing
/// Zou et al.'s KM algorithm [26]):
///   1. partition V(G) into k blocks (METIS substitute);
///   2. pad blocks with noise vertices to exactly ceil(|V(Gk)|/k) rows and
///      align them row-by-row into the AVT;
///   3. block alignment: every block receives the union of all blocks'
///      intra-block edge patterns (in row coordinates);
///   4. edge copy: every crossing edge is replicated under all k block
///      shifts;
///   5. each AVT row's vertices receive the union of the row's type sets and
///      label sets (so symmetric vertices are indistinguishable — see
///      DESIGN.md on type sets).
/// The result satisfies: every F_m is an automorphism of Gk, G ⊆ Gk, and
/// every row is attribute-uniform.
Result<KAutomorphicGraph> BuildKAutomorphicGraph(
    const AttributedGraph& graph, const KAutomorphismOptions& options);

}  // namespace ppsm

#endif  // PPSM_KAUTO_KAUTOMORPHISM_H_
