#ifndef PPSM_KAUTO_AVT_H_
#define PPSM_KAUTO_AVT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/attributed_graph.h"
#include "util/status.h"

namespace ppsm {

/// Alignment Vertex Table (paper §2.2 Def. 4). Each row is an alignment
/// vertex instance (AVI): the k symmetric vertices of one orbit, one per
/// block. Column b lists the vertices of block b. The table defines the k
/// automorphic functions F_m: F_m(row r, block b) = (row r, block (b+m) mod
/// k) — the circularly-linked-list semantics of the paper.
class Avt {
 public:
  Avt() = default;
  /// Table of `num_rows` rows over `k` blocks, initialized to
  /// kInvalidVertex.
  Avt(uint32_t k, uint32_t num_rows);

  uint32_t k() const { return k_; }
  uint32_t num_rows() const { return num_rows_; }
  /// Total vertices covered (= k * num_rows when complete).
  size_t NumVertices() const { return position_.size(); }

  /// Places vertex `v` at (row, block). Each vertex may be placed once;
  /// each cell filled once.
  void Place(uint32_t row, uint32_t block, VertexId v);

  VertexId At(uint32_t row, uint32_t block) const;
  uint32_t RowOf(VertexId v) const;
  uint32_t BlockOf(VertexId v) const;
  bool Contains(VertexId v) const;

  /// F_m(v): shifts v's block by m (mod k). F_0 is the identity.
  VertexId Apply(VertexId v, uint32_t m) const;
  /// Applies F_m elementwise to a vertex tuple (a subgraph match).
  std::vector<VertexId> ApplyToMatch(std::span<const VertexId> match,
                                     uint32_t m) const;
  /// The inverse function index: Apply(Apply(v, m), InverseShift(m)) == v.
  uint32_t InverseShift(uint32_t m) const { return (k_ - m % k_) % k_; }

  /// All vertices of block `block` in row order (a column of the table).
  std::vector<VertexId> BlockVertices(uint32_t block) const;

  /// OK iff every cell is filled with a distinct valid vertex id and the
  /// inverse map agrees.
  Status Validate() const;

  /// Wire format (cloud receives the AVT together with Go).
  std::vector<uint8_t> Serialize() const;
  static Result<Avt> Deserialize(std::span<const uint8_t> bytes);

  friend bool operator==(const Avt& a, const Avt& b) {
    return a.k_ == b.k_ && a.num_rows_ == b.num_rows_ && a.cells_ == b.cells_;
  }

 private:
  size_t CellIndex(uint32_t row, uint32_t block) const {
    return static_cast<size_t>(row) * k_ + block;
  }

  uint32_t k_ = 0;
  uint32_t num_rows_ = 0;
  std::vector<VertexId> cells_;  // Row-major (row * k + block).
  /// position_[v] = row * k + block; kInvalidPosition when unplaced.
  std::vector<uint64_t> position_;

  static constexpr uint64_t kInvalidPosition = UINT64_MAX;
};

}  // namespace ppsm

#endif  // PPSM_KAUTO_AVT_H_
