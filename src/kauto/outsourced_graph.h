#ifndef PPSM_KAUTO_OUTSOURCED_GRAPH_H_
#define PPSM_KAUTO_OUTSOURCED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kauto/kautomorphism.h"
#include "util/status.h"

namespace ppsm {

/// The outsourced graph Go, generalized to an h-hop radius around B1. With
/// hops == 1 this is exactly the paper's §4.1 Def. 5: the first block B1 of
/// Gk together with the one-hop neighbors of its vertices, carrying exactly
/// the Gk edges incident to B1 (within B1 or between B1 and N1 — never
/// inside N1). With hops == h the vertex set extends to everything within h
/// hops of B1 and the edge set to every Gk edge with an endpoint within
/// h - 1 hops of B1 — precisely what the generalized unit matcher needs: a
/// Gk match of a depth-j decomposition unit whose root lies in B1 keeps each
/// depth-d vertex within d <= h hops of B1 and each tree edge incident to a
/// vertex within h - 1 hops, so R(U,Go), pulled through the automorphic
/// functions, is complete for every unit of depth <= hops (DESIGN.md §14).
/// This is what actually travels to the cloud: roughly a 1/k fraction
/// of Gk at h = 1, growing with the radius, yet sufficient to recover all of
/// Gk through the automorphic functions.
///
/// Vertices are stored compactly, ring by ring: local ids [0, num_b1) are
/// the B1 vertices in AVT row order; each subsequent ring (distance 1, 2,
/// ..., hops) follows in ascending Gk id order — so the B1 and ring-1 layout
/// (and every VBV bit position) is independent of `hops`. `to_gk` maps local
/// ids back to Gk ids, which the cloud needs to apply the AVT's automorphic
/// functions to unit matches.
struct OutsourcedGraph {
  AttributedGraph graph;        // Compact local ids.
  std::vector<VertexId> to_gk;  // local id -> Gk id.
  size_t num_b1 = 0;            // Local ids < num_b1 are block-B1 vertices.
  uint32_t k = 0;               // The privacy parameter of the source Gk.
  uint32_t hops = 1;            // Extraction radius around B1 (>= 1).

  bool InB1(VertexId local) const { return local < num_b1; }
  VertexId ToGk(VertexId local) const { return to_gk[local]; }

  /// Wire format (graph + id map + metadata). hops == 1 emits the legacy
  /// "PGo1" layout byte for byte; deeper radii emit "PGo2" with the radius.
  std::vector<uint8_t> Serialize() const;
  static Result<OutsourcedGraph> Deserialize(std::span<const uint8_t> bytes);
};

/// Extracts Go from a built k-automorphic graph. `num_threads` workers scan
/// the frontier neighborhoods concurrently; the result is identical for
/// every value (each ring is canonicalized by sort+unique and the edge batch
/// is assembled from fixed-order chunks — DESIGN.md §11). `hops` is the
/// extraction radius; 1 reproduces the paper's Go bit for bit.
Result<OutsourcedGraph> BuildOutsourcedGraph(const KAutomorphicGraph& kag,
                                             size_t num_threads = 1,
                                             uint32_t hops = 1);

}  // namespace ppsm

#endif  // PPSM_KAUTO_OUTSOURCED_GRAPH_H_
