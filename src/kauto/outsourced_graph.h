#ifndef PPSM_KAUTO_OUTSOURCED_GRAPH_H_
#define PPSM_KAUTO_OUTSOURCED_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "kauto/kautomorphism.h"
#include "util/status.h"

namespace ppsm {

/// The outsourced graph Go (paper §4.1 Def. 5): the first block B1 of Gk
/// together with the one-hop neighbors of its vertices, carrying exactly the
/// Gk edges incident to B1 (within B1 or between B1 and N1 — never inside
/// N1). This is what actually travels to the cloud: roughly a 1/k fraction
/// of Gk, yet sufficient to recover all of Gk through the automorphic
/// functions.
///
/// Vertices are stored compactly: local ids [0, num_b1) are the B1 vertices
/// in AVT row order; N1 vertices follow. `to_gk` maps local ids back to Gk
/// ids, which the cloud needs to apply the AVT's automorphic functions to
/// star matches.
struct OutsourcedGraph {
  AttributedGraph graph;        // Compact local ids.
  std::vector<VertexId> to_gk;  // local id -> Gk id.
  size_t num_b1 = 0;            // Local ids < num_b1 are block-B1 vertices.
  uint32_t k = 0;               // The privacy parameter of the source Gk.

  bool InB1(VertexId local) const { return local < num_b1; }
  VertexId ToGk(VertexId local) const { return to_gk[local]; }

  /// Wire format (graph + id map + metadata).
  std::vector<uint8_t> Serialize() const;
  static Result<OutsourcedGraph> Deserialize(std::span<const uint8_t> bytes);
};

/// Extracts Go from a built k-automorphic graph. `num_threads` workers scan
/// B1's neighborhoods concurrently; the result is identical for every value
/// (the N1 set is canonicalized by sort+unique and the edge batch is
/// assembled from fixed-order chunks — DESIGN.md §11).
Result<OutsourcedGraph> BuildOutsourcedGraph(const KAutomorphicGraph& kag,
                                             size_t num_threads = 1);

}  // namespace ppsm

#endif  // PPSM_KAUTO_OUTSOURCED_GRAPH_H_
