// Concurrent serving study for the PR 2 query-service redesign: one hosted
// system answers the same workload twice — serially (concurrency 1) and
// concurrently (PPSM_BENCH_CONCURRENCY in-flight, default 4) — and the
// table reports throughput, the speedup, tail latency, and the plan-cache
// hit rate. The concurrent pass replays queries the serial pass already
// planned, so its hit rate should approach 100%; speedup needs real cores
// (on a 1-CPU container the two passes tie).

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/query_extractor.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ppsm::bench {
namespace {

size_t ConcurrencyFromEnv(size_t def) {
  const char* raw = std::getenv("PPSM_BENCH_CONCURRENCY");
  if (raw == nullptr) return def;
  const long parsed = std::atol(raw);
  return parsed >= 1 ? static_cast<size_t>(parsed) : def;
}

double CounterValue(const std::string& name) {
  MetricSnapshot snap;
  if (!MetricsRegistry::Global().Find(name, &snap)) return 0.0;
  return snap.value;
}

void Run() {
  const double scale = ScaleFromEnv();
  const size_t distinct = QueriesFromEnv(8);
  const size_t repeat = 4;  // Each distinct query appears this many times.
  const size_t concurrency = ConcurrencyFromEnv(4);
  std::cout << "[bench_serving] scale=" << scale << " distinct=" << distinct
            << " repeat=" << repeat << " concurrency=" << concurrency
            << " pool_threads=" << DefaultPoolThreads() << "\n\n";

  Table table("Concurrent serving: batch replay, serial vs concurrent",
              {"dataset", "mode", "queries", "ok", "qps", "p50 ms", "p95 ms",
               "cache hit %", "speedup"});

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    SystemConfig config;
    config.k = 3;
    config.cloud.num_threads = 1;  // Isolate inter-query concurrency.
    config.cloud.max_inflight = concurrency;
    auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
    if (!system.ok()) {
      std::cerr << system.status() << "\n";
      return;
    }

    // distinct queries x repeat copies, interleaved so cache hits spread
    // across the replay instead of clustering at the end.
    std::vector<AttributedGraph> workload;
    {
      Rng rng(29);
      std::vector<AttributedGraph> base;
      for (size_t i = 0; i < distinct; ++i) {
        auto extracted = ExtractQuery(*graph, 4 + i % 5, rng);
        if (!extracted.ok()) {
          std::cerr << extracted.status() << "\n";
          return;
        }
        base.push_back(extracted->query);
      }
      for (size_t r = 0; r < repeat; ++r) {
        for (const AttributedGraph& q : base) workload.push_back(q);
      }
    }

    double serial_qps = 0.0;
    for (const size_t mode_concurrency : {size_t{1}, concurrency}) {
      const double hits_before =
          CounterValue("ppsm_cloud_plan_cache_hits_total");
      const double misses_before =
          CounterValue("ppsm_cloud_plan_cache_misses_total");
      const BatchOutcome batch =
          system->QueryBatch(workload, mode_concurrency);
      const double hits =
          CounterValue("ppsm_cloud_plan_cache_hits_total") - hits_before;
      const double misses =
          CounterValue("ppsm_cloud_plan_cache_misses_total") - misses_before;
      const double lookups = hits + misses;
      if (mode_concurrency == 1) {
        serial_qps = batch.summary.queries_per_second;
      }
      const double speedup =
          serial_qps > 0.0 ? batch.summary.queries_per_second / serial_qps
                           : 0.0;
      table.AddRowValues(
          dataset.name,
          mode_concurrency == 1
              ? "serial"
              : "concurrent x" + std::to_string(mode_concurrency),
          batch.summary.queries, batch.summary.succeeded,
          Table::Num(batch.summary.queries_per_second, 1),
          Table::Num(batch.summary.p50_ms, 3),
          Table::Num(batch.summary.p95_ms, 3),
          lookups > 0.0 ? Table::Num(100.0 * hits / lookups, 1) : "-",
          Table::Num(speedup, 2));
    }
  }
  Emit(table, "serving");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
