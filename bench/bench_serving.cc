// Concurrent serving study for the PR 2 query-service redesign: one hosted
// system answers the same workload twice — serially (concurrency 1) and
// concurrently (PPSM_BENCH_CONCURRENCY in-flight, default 4) — and the
// table reports throughput, the speedup, tail latency, and the plan-cache
// hit rate. The concurrent pass replays queries the serial pass already
// planned, so its hit rate should approach 100%; speedup needs real cores
// (on a 1-CPU container the two passes tie).
//
// The concurrent pass additionally runs once with the flight recorder
// disabled ("recorder off" rows): the p50 delta against the recorder-on
// pass is the per-query profiling overhead (bench_results/
// BENCH_query_obs.json records the budget: <= 3% on p50). A cost-model
// calibration table (estimate/actual percentiles from the recorded
// profiles) and a JSONL query-log dump close the run.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/query_extractor.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ppsm::bench {
namespace {

size_t ConcurrencyFromEnv(size_t def) {
  const char* raw = std::getenv("PPSM_BENCH_CONCURRENCY");
  if (raw == nullptr) return def;
  const long parsed = std::atol(raw);
  return parsed >= 1 ? static_cast<size_t>(parsed) : def;
}

double CounterValue(const std::string& name) {
  MetricSnapshot snap;
  if (!MetricsRegistry::Global().Find(name, &snap)) return 0.0;
  return snap.value;
}

void Run() {
  const double scale = ScaleFromEnv();
  const size_t distinct = QueriesFromEnv(8);
  const size_t repeat = 4;  // Each distinct query appears this many times.
  const size_t concurrency = ConcurrencyFromEnv(4);
  std::cout << "[bench_serving] scale=" << scale << " distinct=" << distinct
            << " repeat=" << repeat << " concurrency=" << concurrency
            << " pool_threads=" << DefaultPoolThreads() << "\n\n";

  Table table("Concurrent serving: batch replay, serial vs concurrent",
              {"dataset", "mode", "queries", "ok", "qps", "p50 ms", "p95 ms",
               "cache hit %", "speedup"});
  FlightRecorder& recorder = FlightRecorder::Global();

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    SystemConfig config;
    config.k = 3;
    config.cloud.num_threads = 1;  // Isolate inter-query concurrency.
    config.cloud.max_inflight = concurrency;
    auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
    if (!system.ok()) {
      std::cerr << system.status() << "\n";
      return;
    }

    // distinct queries x repeat copies, interleaved so cache hits spread
    // across the replay instead of clustering at the end.
    std::vector<QueryRequest> workload;
    {
      Rng rng(29);
      std::vector<AttributedGraph> base;
      for (size_t i = 0; i < distinct; ++i) {
        auto extracted = ExtractQuery(*graph, 4 + i % 5, rng);
        if (!extracted.ok()) {
          std::cerr << extracted.status() << "\n";
          return;
        }
        base.push_back(extracted->query);
      }
      for (size_t r = 0; r < repeat; ++r) {
        for (const AttributedGraph& q : base) {
          QueryRequest request;
          request.pattern = q;
          workload.push_back(std::move(request));
        }
      }
    }

    double serial_qps = 0.0;
    // Three passes: serial, concurrent (both recorder on, the deployed
    // configuration), then concurrent with the recorder off — the p50 delta
    // between the last two is the profiling overhead.
    struct Mode {
      size_t mode_concurrency;
      bool recorder_on;
    };
    for (const Mode mode : {Mode{1, true}, Mode{concurrency, true},
                            Mode{concurrency, false}}) {
      recorder.SetEnabled(mode.recorder_on);
      const double hits_before =
          CounterValue("ppsm_cloud_plan_cache_hits_total");
      const double misses_before =
          CounterValue("ppsm_cloud_plan_cache_misses_total");
      const BatchResult batch =
          system->ExecuteBatch(workload, mode.mode_concurrency);
      const double hits =
          CounterValue("ppsm_cloud_plan_cache_hits_total") - hits_before;
      const double misses =
          CounterValue("ppsm_cloud_plan_cache_misses_total") - misses_before;
      const double lookups = hits + misses;
      if (mode.mode_concurrency == 1) {
        serial_qps = batch.summary.queries_per_second;
      }
      const double speedup =
          serial_qps > 0.0 ? batch.summary.queries_per_second / serial_qps
                           : 0.0;
      std::string label =
          mode.mode_concurrency == 1
              ? "serial"
              : "concurrent x" + std::to_string(mode.mode_concurrency);
      if (!mode.recorder_on) label += " (recorder off)";
      table.AddRowValues(
          dataset.name, label, batch.summary.queries,
          batch.summary.succeeded,
          Table::Num(batch.summary.queries_per_second, 1),
          Table::Num(batch.summary.p50_ms, 3),
          Table::Num(batch.summary.p95_ms, 3),
          lookups > 0.0 ? Table::Num(100.0 * hits / lookups, 1) : "-",
          Table::Num(speedup, 2));
    }
    recorder.SetEnabled(true);
  }
  Emit(table, "serving");

  // Cost-model calibration from the profiles the recorder just captured:
  // (estimate+1)/(actual+1) percentiles per star and per join step. 1.0 is
  // a perfectly calibrated §5.1 model.
  const std::vector<QueryProfile> profiles = recorder.Recent();
  const CostModelCalibration calibration =
      SummarizeCostModelCalibration(profiles);
  Table cal("Cost-model calibration ((estimate+1)/(actual+1), 1.0 = exact)",
            {"dimension", "samples", "p50", "p90", "p99", "mean |log2|"});
  cal.AddRowValues("star cardinality", calibration.star_samples,
                   Table::Num(calibration.star_ratio_p50, 3),
                   Table::Num(calibration.star_ratio_p90, 3),
                   Table::Num(calibration.star_ratio_p99, 3),
                   Table::Num(calibration.star_mean_abs_log2, 3));
  cal.AddRowValues("join-step output", calibration.join_samples,
                   Table::Num(calibration.join_ratio_p50, 3),
                   Table::Num(calibration.join_ratio_p90, 3),
                   Table::Num(calibration.join_ratio_p99, 3),
                   Table::Num(calibration.join_mean_abs_log2, 3));
  Emit(cal, "serving_calibration");

  // The flight-recorder query log (slow captures + recent ring) lands next
  // to the CSVs; CI uploads it as the run's drill-down artifact.
  const std::string out_dir = OutDir();
  if (!out_dir.empty()) {
    const std::string path = out_dir + "/serving.query_log.jsonl";
    const Status written =
        WriteStringToFile(path, ExportQueryLogJsonl(recorder));
    if (written.ok()) {
      std::cout << "query log written to " << path << " ("
                << recorder.NumSlow() << " slow captures)\n";
    } else {
      std::cerr << written << "\n";
    }
  }
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
