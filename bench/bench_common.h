#ifndef PPSM_BENCH_BENCH_COMMON_H_
#define PPSM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/ppsm_system.h"
#include "graph/generators.h"
#include "util/status.h"
#include "util/table.h"

namespace ppsm::bench {

/// One benchmark dataset: a paper-analogue preset scaled to bench size.
struct BenchDataset {
  std::string name;  // "Web-NotreDame*", etc. (the * marks the analogue).
  DatasetConfig config;
};

/// The three dataset analogues (paper Table 2), scaled by
/// `scale_multiplier` on top of their preset sizes. The benches default to
/// laptop-friendly sizes; export PPSM_BENCH_SCALE to grow/shrink them.
std::vector<BenchDataset> StandardDatasets(double scale_multiplier);

/// PPSM_BENCH_SCALE (default `def`): multiplies preset dataset sizes.
double ScaleFromEnv(double def = 0.05);
/// PPSM_BENCH_QUERIES (default `def`): queries averaged per configuration
/// (the paper uses 100).
size_t QueriesFromEnv(size_t def = 20);

/// Directory for CSV output (PPSM_BENCH_OUT, default "bench_results");
/// created if missing. Returns "" (and CSVs are skipped) on failure.
std::string OutDir();

/// Prints the table and, if OutDir() is usable, writes `<stem>.csv` there
/// along with `<stem>.metrics.json` — the global MetricsRegistry as flat
/// JSON, so perf PRs can diff where the cloud/network/client time went
/// (set PPSM_BENCH_NO_METRICS=1 to skip the dump).
void Emit(const Table& table, const std::string& stem);

/// Writes the global registry to `<OutDir()>/<stem>.metrics.json`.
void DumpMetricsJson(const std::string& stem);

/// Averaged per-query measurements across a batch of random queries of one
/// size, mirroring the paper's reporting (§6.3: 100 random queries,
/// averaged).
struct QueryAggregates {
  double cloud_ms = 0.0;        // Cloud query evaluation (decomp+match+join).
  double decomposition_ms = 0.0;
  double star_matching_ms = 0.0;
  double join_ms = 0.0;
  double client_ms = 0.0;       // Algorithm 3 on the client.
  double network_ms = 0.0;      // Simulated request+response transfer.
  double total_ms = 0.0;        // End-to-end.
  double rs_size = 0.0;         // |RS| (paper Fig. 19).
  double result_rows = 0.0;     // |Rin| (or |R(Qo,Gk)| for BAS).
  double response_bytes = 0.0;
  double candidates = 0.0;      // |R(Qo,Gk)| examined at the client.
  double final_results = 0.0;   // |R(Q,G)|.
  size_t queries = 0;
  /// Queries the cloud refused with ResourceExhausted (row-cap guard);
  /// excluded from the averages.
  size_t refused = 0;
};

/// Extracts `count` random queries with |E(Q)| = `query_edges` from `graph`
/// and runs them through `system`, averaging the outcome fields.
Result<QueryAggregates> RunQueryBatch(PpsmSystem& system,
                                      const AttributedGraph& graph,
                                      size_t query_edges, size_t count,
                                      uint64_t seed);

/// All four methods in the paper's presentation order.
inline const Method kAllMethods[] = {Method::kEff, Method::kRan,
                                     Method::kFsim, Method::kBas};
/// The paper's k sweep.
inline const uint32_t kAllKs[] = {2, 3, 4, 5, 6};
/// The paper's query-size sweep.
inline const size_t kAllQuerySizes[] = {4, 6, 8, 10, 12};

}  // namespace ppsm::bench

#endif  // PPSM_BENCH_BENCH_COMMON_H_
