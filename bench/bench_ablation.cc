// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure — it isolates where the paper's wins come from):
//   1. Block alignment order (type+degree vs BFS) -> noise edges in Gk.
//   2. Rin vs full R(Qo,Gk) transfer -> response bytes saved by the
//      automorphic-expansion trick (§4.2.1).
//   3. ILP-optimal vs greedy vs all-vertices query decomposition -> Def. 6
//      cost of the chosen stars.

#include <iostream>

#include "bench/bench_common.h"
#include "cloud/data_owner.h"
#include "graph/query_extractor.h"
#include "ilp/cover_solver.h"
#include "match/decomposition.h"
#include "match/result_join.h"
#include "util/random.h"

namespace ppsm::bench {
namespace {

void AblateAlignment(const BenchDataset& dataset) {
  auto graph = GenerateDataset(dataset.config);
  if (!graph.ok()) return;
  Table table("Ablation 1: alignment order vs noise edges on " + dataset.name,
              {"k", "type+degree", "BFS"});
  for (const uint32_t k : kAllKs) {
    std::vector<std::string> row{std::to_string(k)};
    for (const AlignmentOrder order :
         {AlignmentOrder::kTypeDegree, AlignmentOrder::kBfs}) {
      KAutomorphismOptions options;
      options.k = k;
      options.alignment = order;
      auto kag = BuildKAutomorphicGraph(*graph, options);
      if (!kag.ok()) {
        std::cerr << kag.status() << "\n";
        return;
      }
      row.push_back(std::to_string(kag->NumNoiseEdges()));
    }
    table.AddRow(row);
  }
  const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
  Emit(table, "ablation_alignment_" + stem);
}

void AblateRinTransfer(const BenchDataset& dataset, size_t queries) {
  auto graph = GenerateDataset(dataset.config);
  if (!graph.ok()) return;
  Table table("Ablation 2: Rin vs full R(Qo,Gk) transfer bytes on " +
                  dataset.name + " (EFF, |E(Q)|=6)",
              {"k", "Rin bytes", "full bytes", "saving factor"});
  for (const uint32_t k : kAllKs) {
    SystemConfig config;
    config.method = Method::kEff;
    config.k = k;
    auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
    if (!system.ok()) {
      std::cerr << system.status() << "\n";
      return;
    }
    Rng rng(k * 17);
    double rin_bytes = 0.0;
    double full_bytes = 0.0;
    size_t done = 0;
    for (size_t i = 0; i < queries; ++i) {
      auto extracted = ExtractQuery(*graph, 6, rng);
      if (!extracted.ok()) continue;
      QueryRequest exec_request;
      exec_request.pattern = extracted->query;
      const QueryResponse outcome = system->Execute(exec_request);
      if (!outcome.ok()) continue;
      rin_bytes += static_cast<double>(outcome.response_bytes);
      // Full transfer: expand Rin to R(Qo,Gk) and serialize that instead.
      auto qo = system->owner().AnonymizeQuery(extracted->query);
      if (!qo.ok()) continue;
      auto request = system->owner().AnonymizeQueryToRequest(
          extracted->query);
      auto answer = system->cloud().Serve(*request);
      if (!answer.ok()) continue;
      auto rin = MatchSet::Deserialize(answer->response_payload);
      if (!rin.ok()) continue;
      const MatchSet full =
          ExpandByAutomorphisms(*rin, system->owner().kag().avt);
      full_bytes += static_cast<double>(full.Serialize().size());
      ++done;
    }
    if (done == 0) continue;
    rin_bytes /= static_cast<double>(done);
    full_bytes /= static_cast<double>(done);
    table.AddRowValues(k, Table::Num(rin_bytes, 0), Table::Num(full_bytes, 0),
                       Table::Num(full_bytes / std::max(rin_bytes, 1.0), 2));
  }
  const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
  Emit(table, "ablation_rin_transfer_" + stem);
}

void AblateDecomposition(const BenchDataset& dataset, size_t queries) {
  auto graph = GenerateDataset(dataset.config);
  if (!graph.ok()) return;
  SystemConfig config;
  config.method = Method::kEff;
  config.k = 3;
  auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
  if (!system.ok()) return;
  const GkStatistics& stats = system->cloud().statistics();

  Table table("Ablation 3: decomposition policy vs Def.6 cost on " +
                  dataset.name + " (k=3)",
              {"|E(Q)|", "ILP-optimal", "greedy cover", "all vertices"});
  Rng rng(99);
  for (const size_t qsize : kAllQuerySizes) {
    double ilp_cost = 0.0;
    double greedy_cost = 0.0;
    double all_cost = 0.0;
    size_t done = 0;
    for (size_t i = 0; i < queries; ++i) {
      auto extracted = ExtractQuery(*graph, qsize, rng);
      if (!extracted.ok()) continue;
      auto qo = system->owner().AnonymizeQuery(extracted->query);
      if (!qo.ok()) continue;
      auto decomposition = DecomposeQuery(*qo, stats);
      if (!decomposition.ok()) continue;
      ilp_cost += decomposition->total_cost;

      // Greedy: repeatedly take the cheapest star covering an uncovered
      // edge (the obvious heuristic the ILP replaces).
      std::vector<double> cost(qo->NumVertices());
      for (VertexId v = 0; v < qo->NumVertices(); ++v) {
        cost[v] = EstimateStarCardinality(stats, *qo, v);
        all_cost += cost[v];
      }
      std::vector<std::pair<VertexId, VertexId>> edges;
      qo->ForEachEdge([&edges](VertexId u, VertexId v) {
        edges.emplace_back(u, v);
      });
      std::vector<bool> covered(edges.size(), false);
      std::vector<bool> chosen(qo->NumVertices(), false);
      for (size_t e = 0; e < edges.size(); ++e) {
        if (covered[e]) continue;
        const auto [u, v] = edges[e];
        const VertexId pick = cost[u] <= cost[v] ? u : v;
        if (!chosen[pick]) {
          chosen[pick] = true;
          greedy_cost += cost[pick];
        }
        for (size_t e2 = 0; e2 < edges.size(); ++e2) {
          if (edges[e2].first == pick || edges[e2].second == pick) {
            covered[e2] = true;
          }
        }
      }
      ++done;
    }
    if (done == 0) continue;
    table.AddRowValues(qsize, Table::Num(ilp_cost / done, 1),
                       Table::Num(greedy_cost / done, 1),
                       Table::Num(all_cost / done, 1));
  }
  const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
  Emit(table, "ablation_decomposition_" + stem);
}

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_ablation] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    AblateAlignment(dataset);
    AblateRinTransfer(dataset, queries);
    AblateDecomposition(dataset, queries);
  }
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
