// Reproduces the paper's cloud query-time study:
//  * Figures 14, 15, 25 and 28-30: query response time vs |E(Q)| for each
//    k in 2..6 on all three datasets, methods EFF/RAN/FSIM/BAS;
//  * Figures 16, 17, 26: query response time vs k for |E(Q)| in {6, 12}.
// Expected shapes: EFF < RAN < FSIM << BAS, widening with |E(Q)| and k;
// BAS degrades fastest because it searches all of Gk.

#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "obs/flight_recorder.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_query_time] scale=" << scale
            << " queries/config=" << queries << "\n\n";

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    // (k, method, |E(Q)|) -> formatted avg cloud ms ("-" when every query
    // was refused at the row cap; a trailing * marks partial refusals).
    std::map<std::tuple<uint32_t, int, size_t>, std::string> grid;
    for (const uint32_t k : kAllKs) {
      for (const Method method : kAllMethods) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        for (const size_t qsize : kAllQuerySizes) {
          auto agg = RunQueryBatch(*system, *graph, qsize, queries,
                                   /*seed=*/qsize * 1000 + k);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          std::string cell = agg->queries == 0
                                 ? "-"
                                 : Table::Num(agg->cloud_ms, 3);
          if (agg->refused > 0 && agg->queries > 0) cell += "*";
          grid[{k, static_cast<int>(method), qsize}] = cell;
        }
      }
    }

    // Figures 14/15/25/28/29/30: one table per k, rows = |E(Q)|.
    const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
    for (const uint32_t k : kAllKs) {
      Table table("Figure 14-15/25/28-30: cloud query time (ms) on " +
                      dataset.name + ", k=" + std::to_string(k),
                  {"|E(Q)|", "EFF", "RAN", "FSIM", "BAS"});
      for (const size_t qsize : kAllQuerySizes) {
        table.AddRowValues(
            qsize, grid[{k, static_cast<int>(Method::kEff), qsize}],
            grid[{k, static_cast<int>(Method::kRan), qsize}],
            grid[{k, static_cast<int>(Method::kFsim), qsize}],
            grid[{k, static_cast<int>(Method::kBas), qsize}]);
      }
      Emit(table, "fig14_query_time_" + stem + "_k" + std::to_string(k));
    }

    // Figures 16/17/26: rows = k, one table per |E(Q)| in {6, 12}.
    for (const size_t qsize : {size_t{6}, size_t{12}}) {
      Table table("Figure 16-17/26: cloud query time (ms) on " +
                      dataset.name + ", |E(Q)|=" + std::to_string(qsize),
                  {"k", "EFF", "RAN", "FSIM", "BAS"});
      for (const uint32_t k : kAllKs) {
        table.AddRowValues(
            k, grid[{k, static_cast<int>(Method::kEff), qsize}],
            grid[{k, static_cast<int>(Method::kRan), qsize}],
            grid[{k, static_cast<int>(Method::kFsim), qsize}],
            grid[{k, static_cast<int>(Method::kBas), qsize}]);
      }
      Emit(table,
           "fig16_query_time_vs_k_" + stem + "_q" + std::to_string(qsize));
    }
  }

  // §5.1 cost-model accuracy over every query the sweep just ran, from the
  // flight recorder's per-star / per-join-step estimate-vs-actual pairs.
  const CostModelCalibration calibration =
      SummarizeCostModelCalibration(FlightRecorder::Global().Recent());
  Table cal("Cost-model calibration ((estimate+1)/(actual+1), 1.0 = exact)",
            {"dimension", "samples", "p50", "p90", "p99", "mean |log2|"});
  cal.AddRowValues("star cardinality", calibration.star_samples,
                   Table::Num(calibration.star_ratio_p50, 3),
                   Table::Num(calibration.star_ratio_p90, 3),
                   Table::Num(calibration.star_ratio_p99, 3),
                   Table::Num(calibration.star_mean_abs_log2, 3));
  cal.AddRowValues("join-step output", calibration.join_samples,
                   Table::Num(calibration.join_ratio_p50, 3),
                   Table::Num(calibration.join_ratio_p90, 3),
                   Table::Num(calibration.join_ratio_p99, 3),
                   Table::Num(calibration.join_mean_abs_log2, 3));
  Emit(cal, "query_time_calibration");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
