// Query-shape ablation (extension bench, not a paper figure): how the cloud
// query time and |Rin| vary across query topologies — paths, stars, cycles,
// trees and the paper's unconstrained random walks — at fixed |E(Q)|.
// Stars stress the star matcher directly (one big star), cycles stress the
// join (every vertex is shared by two stars), paths/trees sit between.
//
// The second half is a DETERMINISTIC counting gate (no timers): the
// mixed-unit planner (radius-2 Go, star/path/tree candidates) vs the
// star-only planner on shape-controlled workloads, reporting peak
// intermediate join rows per workload. Fixed dataset and seeds, integer
// counting only, so CI diffs its BENCH_units.json snapshot at
// --threshold 0 (same pattern as BENCH_sharding).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "graph/query_shapes.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_shapes] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const QueryShape shapes[] = {QueryShape::kPath, QueryShape::kStar,
                               QueryShape::kCycle, QueryShape::kTree,
                               QueryShape::kRandomWalk};
  const size_t query_edges = 6;

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    Table table("Shape ablation on " + dataset.name +
                    " (EFF, k=3, |E(Q)|=6)",
                {"shape", "cloud ms", "|RS|", "|Rin|", "answers",
                 "answered"});
    SystemConfig config;
    config.method = Method::kEff;
    config.k = 3;
    auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
    if (!system.ok()) {
      std::cerr << system.status() << "\n";
      return;
    }
    for (const QueryShape shape : shapes) {
      Rng rng(static_cast<uint64_t>(shape) * 100 + 1);
      double cloud_ms = 0.0;
      double rs = 0.0;
      double rin = 0.0;
      double answers = 0.0;
      size_t done = 0;
      for (size_t i = 0; i < queries; ++i) {
        auto extracted =
            ExtractShapedQuery(*graph, shape, query_edges, rng);
        if (!extracted.ok()) continue;
        QueryRequest request;
        request.pattern = extracted->query;
        const QueryResponse outcome = system->Execute(request);
        if (!outcome.ok()) continue;
        cloud_ms += outcome.cloud.total_ms;
        rs += static_cast<double>(outcome.cloud.rs_size);
        rin += static_cast<double>(outcome.cloud.result_rows);
        answers += static_cast<double>(outcome.matches.NumMatches());
        ++done;
      }
      const double denom = done > 0 ? static_cast<double>(done) : 1.0;
      table.AddRowValues(QueryShapeName(shape),
                         Table::Num(cloud_ms / denom, 3),
                         Table::Num(rs / denom, 1),
                         Table::Num(rin / denom, 1),
                         Table::Num(answers / denom, 1),
                         std::to_string(done) + "/" +
                             std::to_string(queries));
    }
    const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
    Emit(table, "shape_ablation_" + stem);
  }
}

// ---------------------------------------------------------------------------
// Deterministic mixed-vs-star units gate.

/// One shape-controlled workload of the gate: fixed shape, edge count and
/// seed so the extracted queries reproduce exactly on every host.
struct UnitsWorkload {
  const char* name;
  QueryShape shape;
  size_t query_edges;
  uint64_t seed;
};

constexpr UnitsWorkload kUnitsWorkloads[] = {
    {"long_path", QueryShape::kPath, 6, 101},
    {"deep_tree", QueryShape::kTree, 8, 205},
    {"star_friendly", QueryShape::kStar, 4, 303},
};
constexpr size_t kUnitsQueries = 6;

/// Integer counts of one (workload, planner-mode) cell.
struct UnitsCell {
  size_t queries = 0;         // Queries answered (extraction can fail).
  size_t units = 0;           // Total decomposition units across queries.
  size_t deep_units = 0;      // Units with kind != "star".
  size_t rs_rows = 0;         // Total |RS| (unit-match rows).
  size_t peak_join_rows = 0;  // Max intermediate join-step output.
  size_t result_rows = 0;     // Total |Rin|.
  size_t answers = 0;         // Total exact |R(Q,G)|.
};

UnitsCell MeasureUnits(const PpsmSystem& system, const AttributedGraph& g,
                       const UnitsWorkload& workload) {
  UnitsCell cell;
  Rng rng(workload.seed);
  for (size_t i = 0; i < kUnitsQueries; ++i) {
    auto extracted =
        ExtractShapedQuery(g, workload.shape, workload.query_edges, rng);
    if (!extracted.ok()) {
      std::cerr << "extract failed: " << extracted.status() << "\n";
      continue;
    }
    QueryRequest request;
    request.pattern = extracted->query;
    const QueryResponse outcome = system.Execute(request);
    if (!outcome.ok()) {
      std::cerr << "query failed: " << outcome.status << "\n";
      continue;
    }
    ++cell.queries;
    cell.units += outcome.cloud.stars.size();
    for (const UnitProfile& unit : outcome.cloud.stars) {
      if (unit.kind != "star") ++cell.deep_units;
    }
    cell.rs_rows += outcome.cloud.rs_size;
    // Peak over the anchor and every intermediate, but not the final step:
    // the last step's output is |Rin| itself, identical across planners by
    // correctness, so including it would floor the ratio at 1 whenever no
    // intermediate exceeds the answer. Single-step plans (one unit covers
    // Qo) keep their one step — those rows are held either way.
    const auto& steps = outcome.cloud.join_steps;
    const size_t held = steps.size() > 1 ? steps.size() - 1 : steps.size();
    for (size_t s = 0; s < held; ++s) {
      cell.peak_join_rows =
          std::max(cell.peak_join_rows,
                   static_cast<size_t>(steps[s].output_rows));
    }
    cell.result_rows += outcome.cloud.result_rows;
    cell.answers += outcome.matches.NumMatches();
  }
  return cell;
}

/// Writes the gate snapshot; the committed bench_results/BENCH_units.json
/// is this function's verbatim output, so CI can diff at --threshold 0.
void WriteUnitsJson(const std::string& path,
                    const std::vector<std::pair<UnitsCell, UnitsCell>>&
                        cells) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_shapes: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"description\": \"Mixed star/path/tree decomposition vs "
         "star-only planning on shape-controlled workloads: peak "
         "intermediate join rows is the quantity the generalized units "
         "attack. Deterministic counting gate (fixed dataset + seeds, no "
         "timers).\",\n"
      << "  \"fixture\": \"NotreDameLike(0.01) default seed, radius-2 Go, "
         "k=3; star-only = same system with cloud.max_unit_depth=1; "
      << kUnitsQueries << " shaped queries per workload; peak excludes the "
         "final join step (its output is |Rin|, identical across planners "
         "by correctness)\",\n"
      << "  \"command\": \"bench_shapes (the units gate ignores "
         "PPSM_BENCH_SCALE / PPSM_BENCH_QUERIES; honors PPSM_BENCH_OUT)\",\n"
      << "  \"units\": \"row and unit counts; flags (1 = holds, 0 = "
         "violated)\",\n"
      << "  \"host_note\": \"Every leaf is deterministic, so CI gates this "
         "file with tools/bench_diff.py --threshold 0 against a fresh "
         "run.\",\n"
      << "  \"workloads\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const UnitsWorkload& w = kUnitsWorkloads[i];
    const UnitsCell& star = cells[i].first;
    const UnitsCell& mixed = cells[i].second;
    out << "    { \"workload\": \"" << w.name << "\", \"queries\": "
        << mixed.queries << ",\n"
        << "      \"star_only\": { \"units\": " << star.units
        << ", \"rs_rows\": " << star.rs_rows << ", \"peak_join_rows\": "
        << star.peak_join_rows << ", \"result_rows\": " << star.result_rows
        << " },\n"
        << "      \"mixed\": { \"units\": " << mixed.units
        << ", \"deep_units\": " << mixed.deep_units << ", \"rs_rows\": "
        << mixed.rs_rows << ", \"peak_join_rows\": " << mixed.peak_join_rows
        << ", \"result_rows\": " << mixed.result_rows << " },\n"
        << "      \"answers_agree\": "
        << (star.answers == mixed.answers ? 1 : 0)
        << ", \"peak_not_worse\": "
        << (mixed.peak_join_rows <= star.peak_join_rows ? 1 : 0) << " }"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"diff_tool\": \"tools/bench_diff.py compares two of these "
         "files: numeric leaves as before -> after (delta%), --threshold N "
         "exits 1 past N percent (0 here: the gate is deterministic)\"\n"
      << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

void RunUnitsGate() {
  // Fixed-size fixture regardless of PPSM_BENCH_SCALE: the snapshot must
  // reproduce exactly for the threshold-0 CI diff. NotreDameLike's hub
  // structure is the interesting regime: individual stars around a hub
  // match broadly while the full path/tree is selective, so the star-only
  // join materializes a genuine mid-join blowup that deep units avoid.
  auto graph = GenerateDataset(NotreDameLike(0.01));
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return;
  }

  SystemConfig mixed_config;
  mixed_config.method = Method::kEff;
  mixed_config.k = 3;
  mixed_config.go_hops = 2;
  auto mixed = PpsmSystem::Setup(*graph, graph->schema(), mixed_config);
  SystemConfig star_config = mixed_config;
  star_config.cloud.max_unit_depth = 1;  // Star-only planning, same Go.
  auto star_only = PpsmSystem::Setup(*graph, graph->schema(), star_config);
  if (!mixed.ok() || !star_only.ok()) {
    std::cerr << "units gate setup failed\n";
    return;
  }

  Table table("Mixed units vs star-only (radius-2 Go, k=3, deterministic)",
              {"workload", "answered", "units s/m", "deep units",
               "peak join rows s/m", "reduction"});
  std::vector<std::pair<UnitsCell, UnitsCell>> cells;
  for (const UnitsWorkload& workload : kUnitsWorkloads) {
    const UnitsCell star = MeasureUnits(*star_only, *graph, workload);
    const UnitsCell mix = MeasureUnits(*mixed, *graph, workload);
    const double reduction =
        mix.peak_join_rows > 0
            ? static_cast<double>(star.peak_join_rows) /
                  static_cast<double>(mix.peak_join_rows)
            : static_cast<double>(star.peak_join_rows);
    table.AddRowValues(workload.name,
                       std::to_string(mix.queries) + "/" +
                           std::to_string(kUnitsQueries),
                       std::to_string(star.units) + "/" +
                           std::to_string(mix.units),
                       mix.deep_units,
                       std::to_string(star.peak_join_rows) + "/" +
                           std::to_string(mix.peak_join_rows),
                       Table::Num(reduction, 2));
    cells.emplace_back(star, mix);
  }
  table.Print();

  const std::string dir = OutDir();
  if (!dir.empty()) WriteUnitsJson(dir + "/BENCH_units.json", cells);
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  ppsm::bench::RunUnitsGate();
  return 0;
}
