// Query-shape ablation (extension bench, not a paper figure): how the cloud
// query time and |Rin| vary across query topologies — paths, stars, cycles,
// trees and the paper's unconstrained random walks — at fixed |E(Q)|.
// Stars stress the star matcher directly (one big star), cycles stress the
// join (every vertex is shared by two stars), paths/trees sit between.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/query_shapes.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_shapes] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const QueryShape shapes[] = {QueryShape::kPath, QueryShape::kStar,
                               QueryShape::kCycle, QueryShape::kTree,
                               QueryShape::kRandomWalk};
  const size_t query_edges = 6;

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    Table table("Shape ablation on " + dataset.name +
                    " (EFF, k=3, |E(Q)|=6)",
                {"shape", "cloud ms", "|RS|", "|Rin|", "answers",
                 "answered"});
    SystemConfig config;
    config.method = Method::kEff;
    config.k = 3;
    auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
    if (!system.ok()) {
      std::cerr << system.status() << "\n";
      return;
    }
    for (const QueryShape shape : shapes) {
      Rng rng(static_cast<uint64_t>(shape) * 100 + 1);
      double cloud_ms = 0.0;
      double rs = 0.0;
      double rin = 0.0;
      double answers = 0.0;
      size_t done = 0;
      for (size_t i = 0; i < queries; ++i) {
        auto extracted =
            ExtractShapedQuery(*graph, shape, query_edges, rng);
        if (!extracted.ok()) continue;
        auto outcome = system->Query(extracted->query);
        if (!outcome.ok()) continue;
        cloud_ms += outcome->cloud.total_ms;
        rs += static_cast<double>(outcome->cloud.rs_size);
        rin += static_cast<double>(outcome->cloud.result_rows);
        answers += static_cast<double>(outcome->results.NumMatches());
        ++done;
      }
      const double denom = done > 0 ? static_cast<double>(done) : 1.0;
      table.AddRowValues(QueryShapeName(shape),
                         Table::Num(cloud_ms / denom, 3),
                         Table::Num(rs / denom, 1),
                         Table::Num(rin / denom, 1),
                         Table::Num(answers / denom, 1),
                         std::to_string(done) + "/" +
                             std::to_string(queries));
    }
    const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
    Emit(table, "shape_ablation_" + stem);
  }
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
