// google-benchmark microbenchmarks for the hot paths: bit-vector ops, index
// construction, candidate shortlisting, star matching, result join,
// automorphic expansion, client filtering, and serialization.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "anonymize/grouping.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "graph/generators.h"
#include "graph/query_extractor.h"
#include "graph/query_shapes.h"
#include "graph/serialize.h"
#include "kauto/outsourced_graph.h"
#include "match/aux_graph.h"
#include "match/decomposition.h"
#include "match/index.h"
#include "match/query_unit.h"
#include "match/result_join.h"
#include "match/star_matcher.h"
#include "match/unit_matcher.h"
#include "match/subgraph_matcher.h"
#include "util/bitvector.h"
#include "util/intersect.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace ppsm {
namespace {

void BM_BitVectorAnd(benchmark::State& state) {
  const size_t bits = state.range(0);
  Rng rng(1);
  BitVector a(bits), b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Chance(0.3)) a.Set(i);
    if (rng.Chance(0.3)) b.Set(i);
  }
  for (auto _ : state) {
    BitVector c = a;
    c &= b;
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitVectorAnd)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_BitVectorContains(benchmark::State& state) {
  const size_t bits = state.range(0);
  Rng rng(2);
  BitVector big(bits), small(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Chance(0.4)) big.Set(i);
  }
  for (size_t i = 0; i < bits; ++i) {
    if (big.Test(i) && rng.Chance(0.5)) small.Set(i);
  }
  for (auto _ : state) benchmark::DoNotOptimize(big.Contains(small));
}
BENCHMARK(BM_BitVectorContains)->Arg(1024)->Arg(262144);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(state.range(0), 1.0);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

/// Shared fixture pieces built once per benchmark binary run. Owner and
/// server are factory-built, so hold them behind pointers.
struct Fixture {
  AttributedGraph g;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<CloudServer> server;
  std::vector<AttributedGraph> queries;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      DatasetConfig config = DbpediaLike(0.05);
      auto g = GenerateDataset(config);
      PPSM_CHECK_OK(g);
      f->g = std::move(g).value();
      DataOwnerOptions options;
      options.k = 3;
      auto owner = DataOwner::Create(f->g, f->g.schema(), options);
      PPSM_CHECK_OK(owner);
      f->owner = std::make_unique<DataOwner>(std::move(owner).value());
      auto server = CloudServer::Host(f->owner->upload_bytes());
      PPSM_CHECK_OK(server);
      f->server = std::make_unique<CloudServer>(std::move(server).value());
      Rng rng(11);
      for (int i = 0; i < 16; ++i) {
        auto extracted = ExtractQuery(f->g, 6, rng);
        PPSM_CHECK_OK(extracted);
        f->queries.push_back(std::move(extracted->query));
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_GraphSerialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeGraph(f.g).size());
  }
}
BENCHMARK(BM_GraphSerialize);

void BM_GraphDeserialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const auto bytes = SerializeGraph(f.g);
  for (auto _ : state) {
    auto g = DeserializeGraph(bytes, nullptr);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_GraphDeserialize);

void BM_SnapshotSerialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeGraphSnapshot(f.g).size());
  }
  state.counters["bytes"] =
      static_cast<double>(SerializeGraphSnapshot(f.g).size());
}
BENCHMARK(BM_SnapshotSerialize);

void BM_SnapshotDeserialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const auto bytes = SerializeGraphSnapshot(f.g);
  for (auto _ : state) {
    auto g = DeserializeGraphSnapshot(bytes, nullptr);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_SnapshotDeserialize);

void BM_CloudServe(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto request =
        f.owner->AnonymizeQueryToRequest(f.queries[i % f.queries.size()]);
    auto answer = f.server->Serve(*request);
    benchmark::DoNotOptimize(answer.ok());
    ++i;
  }
}
BENCHMARK(BM_CloudServe);

void BM_ClientProcessResponse(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const AttributedGraph& query = f.queries.front();
  const auto request = f.owner->AnonymizeQueryToRequest(query);
  const auto answer = f.server->Serve(*request);
  for (auto _ : state) {
    auto results = f.owner->ProcessResponse(query, answer->response_payload);
    benchmark::DoNotOptimize(results.ok());
  }
}
BENCHMARK(BM_ClientProcessResponse);

void BM_GenericMatcher(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const AttributedGraph& query = f.queries.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindSubgraphMatches(query, f.g).NumMatches());
  }
}
BENCHMARK(BM_GenericMatcher);

// --- Graph-core microbenchmarks (bench_results/BENCH_graph_core.json) ---
// Traversal-bound loops over the storage layout: these are the numbers the
// CSR freeze is accountable to.

void BM_AdjacencyTraversal(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (VertexId v = 0; v < f.g.NumVertices(); ++v) {
      for (const VertexId u : f.g.Neighbors(v)) sum += u;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          static_cast<int64_t>(f.g.NumEdges()));
}
BENCHMARK(BM_AdjacencyTraversal);

void BM_ForEachEdgeTraversal(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    size_t count = 0;
    f.g.ForEachEdge([&](VertexId, VertexId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.g.NumEdges()));
}
BENCHMARK(BM_ForEachEdgeTraversal);

void BM_VertexDataScan(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (VertexId v = 0; v < f.g.NumVertices(); ++v) {
      for (const VertexTypeId t : f.g.Types(v)) sum += t;
      for (const LabelId l : f.g.Labels(v)) sum += l;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_VertexDataScan);

void BM_IndexBuild(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const size_t num_types = f.g.schema()->NumTypes();
  const size_t num_groups = f.g.schema()->NumLabels();
  for (auto _ : state) {
    CloudIndex index =
        CloudIndex::Build(f.g, f.g.NumVertices(), num_types, num_groups)
            .value();
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
}
BENCHMARK(BM_IndexBuild);

void BM_BuilderBulkLoad(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    GraphBuilder b;
    b.ReserveVertices(f.g.NumVertices());
    b.ReserveEdges(f.g.NumEdges());
    for (VertexId v = 0; v < f.g.NumVertices(); ++v) {
      b.AddVertex(f.g.PrimaryType(v), {});
    }
    f.g.ForEachEdge([&](VertexId u, VertexId v) { b.TryAddEdge(u, v); });
    auto built = b.Build();
    benchmark::DoNotOptimize(built.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.g.NumEdges()));
}
BENCHMARK(BM_BuilderBulkLoad);

// The dedup probe on a hub-heavy edge stream (every edge touches vertex 0,
// fed twice). The builder's hash probe is O(1) per edge; the seed's
// sorted-vector scan — kept here as the reference — is O(degree), which
// made hub loads quadratic. Arg = hub degree.
void BM_BuilderHubDedup(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    GraphBuilder b;
    b.ReserveVertices(n + 1u);
    b.ReserveEdges(n);
    for (VertexId v = 0; v <= n; ++v) b.AddVertex(0, {});
    for (int pass = 0; pass < 2; ++pass) {
      for (VertexId v = 1; v <= n; ++v) b.TryAddEdge(0, v);
    }
    benchmark::DoNotOptimize(b.NumEdges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_BuilderHubDedup)->Arg(1 << 10)->Arg(1 << 14);

void BM_LinearProbeHubDedup(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<VertexId>> adjacency(n + 1u);
    auto try_add = [&](VertexId u, VertexId v) {
      const auto& list = adjacency[u];
      if (std::find(list.begin(), list.end(), v) != list.end()) return false;
      adjacency[u].push_back(v);
      adjacency[v].push_back(u);
      return true;
    };
    for (int pass = 0; pass < 2; ++pass) {
      for (VertexId v = 1; v <= n; ++v) try_add(0, v);
    }
    benchmark::DoNotOptimize(adjacency[0].size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_LinearProbeHubDedup)->Arg(1 << 10)->Arg(1 << 14);

void BM_GraphMemoryBytes(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) benchmark::DoNotOptimize(f.g.MemoryBytes());
  state.counters["graph_bytes"] = static_cast<double>(f.g.MemoryBytes());
}
BENCHMARK(BM_GraphMemoryBytes);

// --- Query hot-path benchmarks (bench_results/BENCH_join.json) ---
// Star matching and the star join, isolated from the request/response
// plumbing. The A/B axes: thread count (the ParallelFor chunking) and eager
// k-fold expansion vs the automorphism-aware probe (the k-independent
// memory claim — watch the indexed_rows counter).

struct JoinWorkload {
  AttributedGraph g;
  Lct lct;
  KAutomorphicGraph kag;
  OutsourcedGraph go;
  CloudIndex index;
  GkStatistics stats;
  std::vector<AttributedGraph> qos;
  std::vector<StarDecomposition> decompositions;
  std::vector<std::vector<StarMatches>> star_sets;  // Gk vertex ids.

  /// One workload per k, built lazily and cached for the binary's lifetime.
  static JoinWorkload& Get(uint32_t k) {
    static auto* cache = new std::map<uint32_t, std::unique_ptr<JoinWorkload>>;
    auto it = cache->find(k);
    if (it != cache->end()) return *it->second;
    auto w = std::make_unique<JoinWorkload>();
    DatasetConfig config = DbpediaLike(0.05);
    auto g = GenerateDataset(config);
    PPSM_CHECK_OK(g);
    w->g = std::move(g).value();
    GroupingOptions gopts;
    gopts.theta = 2;
    auto lct =
        BuildLct(GroupingStrategy::kCostModel, *w->g.schema(), w->g, gopts);
    PPSM_CHECK_OK(lct);
    w->lct = std::move(lct).value();
    auto anonymized = w->lct.AnonymizeGraph(w->g);
    PPSM_CHECK_OK(anonymized);
    KAutomorphismOptions kopts;
    kopts.k = k;
    auto kag = BuildKAutomorphicGraph(*anonymized, kopts);
    PPSM_CHECK_OK(kag);
    w->kag = std::move(kag).value();
    auto go = BuildOutsourcedGraph(w->kag);
    PPSM_CHECK_OK(go);
    w->go = std::move(go).value();
    std::vector<VertexTypeId> type_of_group;
    for (GroupId gid = 0; gid < w->lct.NumGroups(); ++gid) {
      type_of_group.push_back(w->lct.TypeOfGroup(gid));
    }
    w->stats =
        ComputeGkStatistics(w->go, w->g.schema()->NumTypes(), type_of_group);
    w->index = CloudIndex::Build(w->go.graph, w->go.num_b1,
                                 w->g.schema()->NumTypes(),
                                 w->lct.NumGroups())
                  .value();

    // Multi-star queries with non-empty joins, keeping the heaviest by
    // intermediate size: the join benches must measure join work, not
    // empty-anchor short-circuits or trivial two-row intermediates.
    struct Candidate {
      size_t peak_rows;
      AttributedGraph qo;
      StarDecomposition decomposition;
      std::vector<StarMatches> stars;
    };
    std::vector<Candidate> candidates;
    Rng rng(17);
    for (int attempt = 0; attempt < 80; ++attempt) {
      auto extracted = ExtractQuery(w->g, 7, rng);
      PPSM_CHECK_OK(extracted);
      auto qo = w->lct.AnonymizeGraph(extracted->query);
      PPSM_CHECK_OK(qo);
      auto decomposition = DecomposeQuery(*qo, w->stats);
      PPSM_CHECK_OK(decomposition);
      if (decomposition->centers.size() < 2) continue;
      std::vector<StarMatches> stars =
          MatchStars(w->go.graph, w->index, *qo, decomposition->centers);
      for (StarMatches& star : stars) {
        MatchSet translated(star.matches.arity());
        std::vector<VertexId> row(star.matches.arity());
        for (size_t r = 0; r < star.matches.NumMatches(); ++r) {
          const auto local = star.matches.Get(r);
          for (size_t i = 0; i < local.size(); ++i) {
            row[i] = w->go.ToGk(local[i]);
          }
          translated.Append(row);
        }
        star.matches = std::move(translated);
      }
      JoinDiagnostics diagnostics;
      JoinOptions probe_options;
      auto rin = JoinStarMatches(stars, w->kag.avt, qo->NumVertices(),
                                 probe_options, &diagnostics);
      if (!rin.ok() || rin->NumMatches() == 0) continue;
      candidates.push_back(Candidate{diagnostics.peak_rows, std::move(*qo),
                                     std::move(*decomposition),
                                     std::move(stars)});
    }
    PPSM_CHECK(!candidates.empty());
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.peak_rows > b.peak_rows;
              });
    for (size_t i = 0; i < std::min<size_t>(candidates.size(), 6); ++i) {
      w->qos.push_back(std::move(candidates[i].qo));
      w->decompositions.push_back(std::move(candidates[i].decomposition));
      w->star_sets.push_back(std::move(candidates[i].stars));
    }
    auto& slot = (*cache)[k];
    slot = std::move(w);
    return *slot;
  }
};

// Args: {threads, use_aux_graph}. The {t, 0} rows are the legacy
// filter-while-walking inner loop, the {t, 1} rows the aux-graph +
// intersection-kernel path — same rows byte for byte, so the delta is pure
// inner-loop speedup.
void BM_MatchStarsThreads(benchmark::State& state) {
  JoinWorkload& w = JoinWorkload::Get(3);
  StarMatchOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  options.use_aux_graph = state.range(1) != 0;
  for (auto _ : state) {
    size_t rows = 0;
    for (size_t q = 0; q < w.qos.size(); ++q) {
      const auto stars = MatchStars(w.go.graph, w.index, w.qos[q],
                                    w.decompositions[q].centers, options);
      for (const StarMatches& star : stars) rows += star.matches.NumMatches();
    }
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_MatchStarsThreads)
    ->ArgsProduct({{1, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// --- Set-intersection kernels (the aux matcher's inner primitive) ---

std::vector<uint32_t> SortedUniverseSample(Rng& rng, size_t n,
                                           uint64_t universe) {
  std::vector<uint32_t> out;
  out.reserve(n);
  uint32_t v = 0;
  // Sorted-by-construction sampling: strictly increasing gaps drawn so the
  // expected max stays inside `universe`.
  const uint64_t gap = std::max<uint64_t>(1, universe / (n + 1));
  for (size_t i = 0; i < n; ++i) {
    v += 1 + static_cast<uint32_t>(rng.Below(2 * gap - 1));
    out.push_back(v);
  }
  return out;
}

// Args: {kernel, smaller size, size ratio}. Ratio 1 is the balanced regime
// (SIMD's home), 64 the skewed regime (galloping's home); kAuto should
// track the best kernel in both.
void BM_IntersectKernel(benchmark::State& state) {
  const auto kernel = static_cast<IntersectKernel>(state.range(0));
  const size_t small_n = static_cast<size_t>(state.range(1));
  const size_t large_n = small_n * static_cast<size_t>(state.range(2));
  Rng rng(91);
  const auto a = SortedUniverseSample(rng, small_n, large_n * 4);
  const auto b = SortedUniverseSample(rng, large_n, large_n * 4);
  std::vector<uint32_t> out(small_n + kIntersectSlack);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectSorted(a, b, out.data(), kernel));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
  state.SetLabel(IntersectKernelName(kernel));
}
BENCHMARK(BM_IntersectKernel)
    ->ArgsProduct({{0, 1, 2, 3}, {64, 1024}, {1, 64}});

// Args: {threads, use_index}. use_index = 1 is the serving path: the hosted
// index's leaf VBVs turn each class into a handful of word-level ANDs.
// use_index = 0 is the index-less fallback (one pass over the CSR pools).
void BM_AuxGraphBuild(benchmark::State& state) {
  JoinWorkload& w = JoinWorkload::Get(3);
  const size_t threads = static_cast<size_t>(state.range(0));
  const CloudIndex* index = state.range(1) != 0 ? &w.index : nullptr;
  for (auto _ : state) {
    size_t bytes = 0;
    for (const AttributedGraph& qo : w.qos) {
      bytes +=
          QueryAuxGraph::Build(w.go.graph, qo, threads, index).MemoryBytes();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.qos.size()));
}
BENCHMARK(BM_AuxGraphBuild)
    ->ArgsProduct({{1, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// Args: {shape (0 = long path, 1 = deep tree), use_aux_graph}. Depth-2
// candidate units over shaped queries — the unit matcher's recursive slot
// loop, where every slot pays a full adjacency filter on the aux-off path.
void BM_MatchUnitsShaped(benchmark::State& state) {
  JoinWorkload& w = JoinWorkload::Get(3);
  const QueryShape shape =
      state.range(0) == 0 ? QueryShape::kPath : QueryShape::kTree;
  const size_t query_edges = state.range(0) == 0 ? 6 : 8;
  Rng rng(11 + state.range(0));
  std::vector<AttributedGraph> qos;
  std::vector<std::vector<QueryUnit>> unit_sets;
  for (int attempt = 0; attempt < 40 && qos.size() < 4; ++attempt) {
    auto extracted = ExtractShapedQuery(w.g, shape, query_edges, rng);
    if (!extracted.ok()) continue;
    auto qo = w.lct.AnonymizeGraph(extracted->query);
    PPSM_CHECK_OK(qo);
    auto units = EnumerateCandidateUnits(*qo, /*max_depth=*/2);
    if (units.empty()) continue;
    qos.push_back(std::move(*qo));
    unit_sets.push_back(std::move(units));
  }
  PPSM_CHECK(!qos.empty());
  UnitMatchOptions options;
  options.use_aux_graph = state.range(1) != 0;
  for (auto _ : state) {
    size_t rows = 0;
    for (size_t q = 0; q < qos.size(); ++q) {
      const auto matched =
          MatchUnits(w.go.graph, w.index, qos[q], unit_sets[q], options);
      for (const UnitMatches& unit : matched) {
        rows += unit.matches.NumMatches();
      }
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(state.range(0) == 0 ? "long_path" : "deep_tree");
}
BENCHMARK(BM_MatchUnitsShaped)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void JoinBench(benchmark::State& state, uint32_t k, bool eager,
               size_t threads) {
  JoinWorkload& w = JoinWorkload::Get(k);
  JoinOptions options;
  options.eager_expansion = eager;
  // The seed pipeline always sorted Rin before returning; the shipped
  // configuration skips that (rows are distinct by construction).
  options.sorted_output = eager;
  options.num_threads = threads;
  size_t indexed_rows = 0;
  size_t peak_rows = 0;
  for (auto _ : state) {
    JoinDiagnostics diagnostics;
    size_t rows = 0;
    for (size_t q = 0; q < w.qos.size(); ++q) {
      auto rin = JoinStarMatches(w.star_sets[q], w.kag.avt,
                                 w.qos[q].NumVertices(), options,
                                 &diagnostics);
      PPSM_CHECK_OK(rin);
      rows += rin->NumMatches();
    }
    benchmark::DoNotOptimize(rows);
    indexed_rows = diagnostics.indexed_rows;
    peak_rows = diagnostics.peak_rows;
  }
  // The memory story: eager hash-indexes the k-fold expansion, the probe
  // indexes each star once — indexed_rows is what the join materializes
  // beyond its output.
  state.counters["indexed_rows"] = static_cast<double>(indexed_rows);
  state.counters["peak_rows"] = static_cast<double>(peak_rows);
}

// Args: {k, threads}. BM_JoinEager at threads=1 is the seed's join
// (materialize the k-fold closure, serial probe); BM_JoinProbe at
// threads=8 is the shipped configuration.
void BM_JoinEager(benchmark::State& state) {
  JoinBench(state, static_cast<uint32_t>(state.range(0)), /*eager=*/true,
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_JoinEager)
    ->ArgsProduct({{2, 4, 8}, {1, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_JoinProbe(benchmark::State& state) {
  JoinBench(state, static_cast<uint32_t>(state.range(0)), /*eager=*/false,
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_JoinProbe)
    ->ArgsProduct({{2, 4, 8}, {1, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_LctBuildEff(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  GroupingOptions options;
  options.theta = 2;
  for (auto _ : state) {
    auto lct = BuildLct(GroupingStrategy::kCostModel, *f.g.schema(), f.g,
                        options);
    benchmark::DoNotOptimize(lct.ok());
  }
}
BENCHMARK(BM_LctBuildEff);

}  // namespace
}  // namespace ppsm

BENCHMARK_MAIN();
