// google-benchmark microbenchmarks for the hot paths: bit-vector ops, index
// construction, candidate shortlisting, star matching, result join,
// automorphic expansion, client filtering, and serialization.

#include <benchmark/benchmark.h>

#include <memory>

#include "anonymize/grouping.h"
#include "cloud/cloud_server.h"
#include "cloud/data_owner.h"
#include "graph/generators.h"
#include "graph/query_extractor.h"
#include "graph/serialize.h"
#include "match/result_join.h"
#include "match/star_matcher.h"
#include "match/subgraph_matcher.h"
#include "util/bitvector.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/zipf.h"

namespace ppsm {
namespace {

void BM_BitVectorAnd(benchmark::State& state) {
  const size_t bits = state.range(0);
  Rng rng(1);
  BitVector a(bits), b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Chance(0.3)) a.Set(i);
    if (rng.Chance(0.3)) b.Set(i);
  }
  for (auto _ : state) {
    BitVector c = a;
    c &= b;
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetItemsProcessed(state.iterations() * bits);
}
BENCHMARK(BM_BitVectorAnd)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_BitVectorContains(benchmark::State& state) {
  const size_t bits = state.range(0);
  Rng rng(2);
  BitVector big(bits), small(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Chance(0.4)) big.Set(i);
  }
  for (size_t i = 0; i < bits; ++i) {
    if (big.Test(i) && rng.Chance(0.5)) small.Set(i);
  }
  for (auto _ : state) benchmark::DoNotOptimize(big.Contains(small));
}
BENCHMARK(BM_BitVectorContains)->Arg(1024)->Arg(262144);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(state.range(0), 1.0);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

/// Shared fixture pieces built once per benchmark binary run. Owner and
/// server are factory-built, so hold them behind pointers.
struct Fixture {
  AttributedGraph g;
  std::unique_ptr<DataOwner> owner;
  std::unique_ptr<CloudServer> server;
  std::vector<AttributedGraph> queries;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      DatasetConfig config = DbpediaLike(0.05);
      auto g = GenerateDataset(config);
      PPSM_CHECK_OK(g);
      f->g = std::move(g).value();
      DataOwnerOptions options;
      options.k = 3;
      auto owner = DataOwner::Create(f->g, f->g.schema(), options);
      PPSM_CHECK_OK(owner);
      f->owner = std::make_unique<DataOwner>(std::move(owner).value());
      auto server = CloudServer::Host(f->owner->upload_bytes());
      PPSM_CHECK_OK(server);
      f->server = std::make_unique<CloudServer>(std::move(server).value());
      Rng rng(11);
      for (int i = 0; i < 16; ++i) {
        auto extracted = ExtractQuery(f->g, 6, rng);
        PPSM_CHECK_OK(extracted);
        f->queries.push_back(std::move(extracted->query));
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_GraphSerialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeGraph(f.g).size());
  }
}
BENCHMARK(BM_GraphSerialize);

void BM_GraphDeserialize(benchmark::State& state) {
  const Fixture& f = Fixture::Get();
  const auto bytes = SerializeGraph(f.g);
  for (auto _ : state) {
    auto g = DeserializeGraph(bytes, nullptr);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_GraphDeserialize);

void BM_CloudAnswerQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const auto request =
        f.owner->AnonymizeQueryToRequest(f.queries[i % f.queries.size()]);
    auto answer = f.server->AnswerQuery(*request);
    benchmark::DoNotOptimize(answer.ok());
    ++i;
  }
}
BENCHMARK(BM_CloudAnswerQuery);

void BM_ClientProcessResponse(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const AttributedGraph& query = f.queries.front();
  const auto request = f.owner->AnonymizeQueryToRequest(query);
  const auto answer = f.server->AnswerQuery(*request);
  for (auto _ : state) {
    auto results = f.owner->ProcessResponse(query, answer->response_payload);
    benchmark::DoNotOptimize(results.ok());
  }
}
BENCHMARK(BM_ClientProcessResponse);

void BM_GenericMatcher(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const AttributedGraph& query = f.queries.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindSubgraphMatches(query, f.g).NumMatches());
  }
}
BENCHMARK(BM_GenericMatcher);

void BM_LctBuildEff(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  GroupingOptions options;
  options.theta = 2;
  for (auto _ : state) {
    auto lct = BuildLct(GroupingStrategy::kCostModel, *f.g.schema(), f.g,
                        options);
    benchmark::DoNotOptimize(lct.ok());
  }
}
BENCHMARK(BM_LctBuildEff);

}  // namespace
}  // namespace ppsm

BENCHMARK_MAIN();
