#include "bench/bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "graph/query_extractor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace ppsm::bench {

std::vector<BenchDataset> StandardDatasets(double scale_multiplier) {
  return {
      {"Web-NotreDame*", NotreDameLike(scale_multiplier)},
      {"DBpedia*", DbpediaLike(scale_multiplier)},
      {"UK-2002*", Uk2002Like(scale_multiplier)},
  };
}

double ScaleFromEnv(double def) {
  const char* value = std::getenv("PPSM_BENCH_SCALE");
  if (value == nullptr) return def;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : def;
}

size_t QueriesFromEnv(size_t def) {
  const char* value = std::getenv("PPSM_BENCH_QUERIES");
  if (value == nullptr) return def;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : def;
}

std::string OutDir() {
  const char* value = std::getenv("PPSM_BENCH_OUT");
  const std::string dir = value != nullptr ? value : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  return dir;
}

void Emit(const Table& table, const std::string& stem) {
  table.Print();
  const std::string dir = OutDir();
  if (!dir.empty()) {
    const std::string path = dir + "/" + stem + ".csv";
    if (!table.WriteCsv(path)) {
      std::cerr << "warning: could not write " << path << "\n";
    }
  }
  if (std::getenv("PPSM_BENCH_NO_METRICS") == nullptr) {
    DumpMetricsJson(stem);
  }
}

void DumpMetricsJson(const std::string& stem) {
  const std::string dir = OutDir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + stem + ".metrics.json";
  const Status written =
      WriteStringToFile(path, ExportMetricsJson(MetricsRegistry::Global()));
  if (!written.ok()) {
    std::cerr << "warning: " << written.ToString() << "\n";
  }
}

Result<QueryAggregates> RunQueryBatch(PpsmSystem& system,
                                      const AttributedGraph& graph,
                                      size_t query_edges, size_t count,
                                      uint64_t seed) {
  QueryAggregates agg;
  Rng rng(seed);
  size_t completed = 0;
  for (size_t i = 0; i < count; ++i) {
    PPSM_ASSIGN_OR_RETURN(const ExtractedQuery extracted,
                          ExtractQuery(graph, query_edges, rng));
    QueryRequest request;
    request.pattern = extracted.query;
    const QueryResponse outcome = system.Execute(request);
    if (!outcome.ok()) {
      if (outcome.status.code() == StatusCode::kResourceExhausted) {
        ++agg.refused;  // Row-cap guard tripped: skip this query.
        continue;
      }
      return outcome.status;
    }
    ++completed;
    agg.cloud_ms += outcome.cloud.total_ms;
    agg.decomposition_ms += outcome.cloud.decomposition_ms;
    agg.star_matching_ms += outcome.cloud.star_matching_ms;
    agg.join_ms += outcome.cloud.join_ms;
    agg.client_ms += outcome.client_ms;
    agg.network_ms += outcome.network_ms;
    agg.total_ms += outcome.total_ms;
    agg.rs_size += static_cast<double>(outcome.cloud.rs_size);
    agg.result_rows += static_cast<double>(outcome.cloud.result_rows);
    agg.response_bytes += static_cast<double>(outcome.response_bytes);
    agg.candidates += static_cast<double>(outcome.client_candidates);
    agg.final_results += static_cast<double>(outcome.matches.NumMatches());
  }
  if (completed == 0) {
    agg.queries = 0;
    return agg;
  }
  const auto denom = static_cast<double>(completed);
  agg.cloud_ms /= denom;
  agg.decomposition_ms /= denom;
  agg.star_matching_ms /= denom;
  agg.join_ms /= denom;
  agg.client_ms /= denom;
  agg.network_ms /= denom;
  agg.total_ms /= denom;
  agg.rs_size /= denom;
  agg.result_rows /= denom;
  agg.response_bytes /= denom;
  agg.candidates /= denom;
  agg.final_results /= denom;
  agg.queries = completed;
  return agg;
}

}  // namespace ppsm::bench
