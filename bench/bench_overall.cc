// Reproduces paper Figures 22 & 34: overall end-to-end running time (cloud
// + network + client) for k = 2..6, |E(Q)| in {6, 12}, all four methods on
// every dataset. Expected shape: EFF best everywhere; BAS worst and
// degrading fastest with k and |E(Q)|.

#include <iostream>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_overall] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const size_t qsizes[] = {6, 12};

  Table table("Figure 22/34: overall running time (ms)",
              {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6", "k=3 q12",
               "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12", "k=6 q6",
               "k=6 q12"});
  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    for (const Method method : kAllMethods) {
      std::vector<std::string> row{dataset.name, MethodName(method)};
      for (const uint32_t k : kAllKs) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        for (const size_t qsize : qsizes) {
          auto agg = RunQueryBatch(*system, *graph, qsize, queries,
                                   /*seed=*/qsize * 3 + k);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          row.push_back(Table::Num(agg->total_ms, 3));
        }
      }
      table.AddRow(row);
    }
  }
  Emit(table, "fig22_overall_time");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
