// Reproduces paper Figures 18 & 31 (star matching time) and Figures 19 & 32
// (|RS|, the star-match result-set size) for EFF/RAN/FSIM over
// k in 2..6 and |E(Q)| in {6, 12}. Expected shape: EFF < RAN < FSIM on both
// metrics — the cost-model grouping shrinks every star's candidate set.

#include <iostream>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_star_matching] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const Method methods[] = {Method::kEff, Method::kRan, Method::kFsim};
  const size_t qsizes[] = {6, 12};

  Table time_table("Figure 18/31: star matching time (ms)",
                   {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                    "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                    "k=6 q6", "k=6 q12"});
  Table rs_table("Figure 19/32: |RS| (star match result size)",
                 {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                  "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                  "k=6 q6", "k=6 q12"});

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    for (const Method method : methods) {
      std::vector<std::string> time_row{dataset.name, MethodName(method)};
      std::vector<std::string> rs_row{dataset.name, MethodName(method)};
      for (const uint32_t k : kAllKs) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        for (const size_t qsize : qsizes) {
          auto agg = RunQueryBatch(*system, *graph, qsize, queries,
                                   /*seed=*/qsize * 77 + k);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          time_row.push_back(Table::Num(agg->star_matching_ms, 3));
          rs_row.push_back(Table::Num(agg->rs_size, 1));
        }
      }
      time_table.AddRow(time_row);
      rs_table.AddRow(rs_row);
    }
  }
  Emit(time_table, "fig18_star_matching_time");
  Emit(rs_table, "fig19_rs_size");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
