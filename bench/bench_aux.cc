// bench_aux — the auxiliary-graph matcher's byte-identity and coverage gate.
//
// The aux path (match/aux_graph.h + util/intersect.h) is a pure execution
// strategy: per-query candidate sets plus set-intersection kernels replacing
// the filter-while-walking inner loop, with byte-identical rows guaranteed
// at any kernel, thread count and shard count (DESIGN.md §15). This bench
// makes the guarantee measurable: a formula-built fixture is matched with
// the aux path OFF (the reference) and ON under every kernel, asserting
// row-for-row equality, and a fixed pseudo-random set workload runs every
// kernel against std::set_intersection.
//
// Unlike the timing benches this one is fully deterministic — a counting
// benchmark, no timers: fixtures are formula-built, seeds fixed, and every
// emitted leaf (rows, flags, class/candidate counts) reproduces exactly on
// any host (SIMD availability shifts kernel *dispatch*, never output, and
// dispatch counts are deliberately not emitted). CI gates it with
//
//   tools/bench_diff.py --threshold 0
//       bench_results/BENCH_aux.json <out>/BENCH_aux.json
//
// PPSM_BENCH_SCALE / PPSM_BENCH_QUERIES are deliberately ignored; only
// PPSM_BENCH_OUT (output directory) is honored.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/attributed_graph.h"
#include "graph/query_extractor.h"
#include "match/aux_graph.h"
#include "match/index.h"
#include "match/query_unit.h"
#include "match/unit_matcher.h"
#include "util/intersect.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"

namespace ppsm::bench {
namespace {

constexpr size_t kVertices = 420;
constexpr uint32_t kNumTypes = 4;
constexpr uint32_t kNumGroups = 24;
constexpr size_t kNumQueries = 8;
constexpr uint64_t kQuerySeed = 31;
constexpr IntersectKernel kKernels[] = {
    IntersectKernel::kAuto, IntersectKernel::kScalar,
    IntersectKernel::kGalloping, IntersectKernel::kSimd};

/// Ring + chord stencils, formula-built labels: identical on every host.
AttributedGraph MakeGraph() {
  GraphBuilder builder;
  builder.ReserveVertices(kVertices);
  for (VertexId v = 0; v < kVertices; ++v) {
    builder.AddVertex(static_cast<VertexTypeId>(v % kNumTypes),
                      {static_cast<LabelId>(v % kNumGroups),
                       static_cast<LabelId>((v / 2) % kNumGroups)});
  }
  for (VertexId v = 0; v < kVertices; ++v) {
    builder.TryAddEdge(v, (v + 1) % kVertices);
    builder.TryAddEdge(v, (v + 7) % kVertices);
    builder.TryAddEdge(v, (v + 13) % kVertices);
  }
  return builder.Build().value();
}

struct KernelCell {
  const char* kernel = "";
  size_t rows = 0;           // Total unit-match rows, aux path ON.
  bool identical = true;     // Row-for-row equal to the aux-off reference.
};

struct WorkloadResult {
  size_t reference_rows = 0;  // Aux-off filter-while-walking rows.
  size_t units = 0;           // Decomposition units matched per kernel.
  size_t aux_classes = 0;     // Compat classes of the workload's queries.
  size_t aux_bytes = 0;       // Sum of per-query aux footprints.
  std::vector<KernelCell> cells;
};

WorkloadResult RunMatchWorkload(const AttributedGraph& g) {
  WorkloadResult result;
  const CloudIndex index =
      CloudIndex::Build(g, g.NumVertices(), kNumTypes, kNumGroups).value();

  Rng rng(kQuerySeed);
  std::vector<AttributedGraph> queries;
  for (size_t i = 0; i < kNumQueries; ++i) {
    auto extracted = ExtractQuery(g, 3 + i % 4, rng);
    PPSM_CHECK_OK(extracted);
    queries.push_back(std::move(extracted->query));
  }

  for (const IntersectKernel kernel : kKernels) {
    result.cells.push_back({IntersectKernelName(kernel), 0, true});
  }
  for (const AttributedGraph& qo : queries) {
    const auto units = EnumerateCandidateUnits(qo, /*max_depth=*/2);
    const QueryAuxGraph aux = QueryAuxGraph::Build(g, qo);
    result.aux_classes += aux.NumClasses();
    result.aux_bytes += aux.MemoryBytes();

    UnitMatchOptions off;
    off.use_aux_graph = false;
    const auto reference = MatchUnits(g, index, qo, units, off);
    result.units += reference.size();
    for (const UnitMatches& unit : reference) {
      result.reference_rows += unit.matches.NumMatches();
    }

    for (size_t c = 0; c < result.cells.size(); ++c) {
      UnitMatchOptions on;
      on.use_aux_graph = true;
      on.intersect_kernel = kKernels[c];
      const auto got = MatchUnits(g, index, qo, units, on);
      for (size_t u = 0; u < got.size(); ++u) {
        result.cells[c].rows += got[u].matches.NumMatches();
        if (!(got[u].matches == reference[u].matches) ||
            got[u].columns != reference[u].columns) {
          result.cells[c].identical = false;
        }
      }
    }
  }
  return result;
}

struct KernelAgreement {
  const char* kernel = "";
  size_t pairs = 0;    // Set pairs intersected.
  size_t matched = 0;  // Total elements across all intersections.
  bool agrees = true;  // Equal (content and order) to std::set_intersection.
};

/// Fixed pseudo-random set workload spanning the kernels' regimes: balanced,
/// >=32x skewed (the galloping crossover) and block-sized (the SIMD sweet
/// spot). Deterministic: Rng(seed) streams are host-independent.
std::vector<KernelAgreement> RunKernelWorkload() {
  Rng rng(57);
  std::vector<std::pair<std::vector<uint32_t>, std::vector<uint32_t>>> pairs;
  auto make_sorted = [&rng](size_t n, uint64_t universe) {
    std::set<uint32_t> values;
    while (values.size() < n) {
      values.insert(static_cast<uint32_t>(rng.Below(universe)));
    }
    return std::vector<uint32_t>(values.begin(), values.end());
  };
  for (int i = 0; i < 40; ++i) {
    const size_t na = 1 + rng.Below(200);
    const size_t nb = 1 + rng.Below(200);
    pairs.emplace_back(make_sorted(na, 600), make_sorted(nb, 600));
  }
  for (int i = 0; i < 20; ++i) {
    pairs.emplace_back(make_sorted(1 + rng.Below(6), 4000),
                       make_sorted(1000 + rng.Below(1000), 4000));
  }

  std::vector<KernelAgreement> out;
  for (const IntersectKernel kernel : kKernels) {
    KernelAgreement agreement;
    agreement.kernel = IntersectKernelName(kernel);
    agreement.pairs = pairs.size();
    std::vector<uint32_t> got, want;
    for (const auto& [a, b] : pairs) {
      IntersectInto(a, b, &got, kernel);
      want.clear();
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(want));
      agreement.matched += got.size();
      if (got != want) agreement.agrees = false;
    }
    out.push_back(agreement);
  }
  return out;
}

/// Writes the gate snapshot. The committed bench_results/BENCH_aux.json is
/// this function's verbatim output, so CI can diff at --threshold 0.
void WriteBenchJson(const std::string& path, const WorkloadResult& match,
                    const std::vector<KernelAgreement>& kernels) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_aux: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"description\": \"Auxiliary-graph matcher byte-identity gate: "
         "unit matching with the per-query aux graph ON, under every "
         "set-intersection kernel, must produce row-for-row identical "
         "matches to the aux-off filter-while-walking reference; and every "
         "kernel must agree with std::set_intersection on a fixed set "
         "workload. Fully deterministic counting benchmark (no timers).\",\n"
      << "  \"fixture\": \"synthetic graph, " << kVertices << " vertices, "
      << kNumTypes << " types, " << kNumGroups
      << " label groups, ring+chord(7,13) edges; " << kNumQueries
      << " extracted queries of 3-6 edges, seed " << kQuerySeed
      << "; depth-2 candidate units\",\n"
      << "  \"command\": \"bench_aux (ignores PPSM_BENCH_SCALE / "
         "PPSM_BENCH_QUERIES; honors PPSM_BENCH_OUT)\",\n"
      << "  \"units\": \"rows, bytes, flags (1 = identical / agrees, 0 = "
         "violated)\",\n"
      << "  \"host_note\": \"Every leaf is deterministic: SIMD availability "
         "changes which kernel body runs, never its output, and dispatch "
         "counts are not emitted — so CI gates this file with "
         "tools/bench_diff.py --threshold 0 against a fresh run.\",\n"
      << "  \"reference\": { \"aux\": 0, \"units\": " << match.units
      << ", \"rows\": " << match.reference_rows << " },\n"
      << "  \"aux_classes\": " << match.aux_classes << ",\n"
      << "  \"aux_bytes\": " << match.aux_bytes << ",\n"
      << "  \"match_results\": [\n";
  for (size_t i = 0; i < match.cells.size(); ++i) {
    const KernelCell& c = match.cells[i];
    out << "    { \"kernel\": \"" << c.kernel << "\", \"aux\": 1, \"rows\": "
        << c.rows << ", \"identical_rows\": " << (c.identical ? 1 : 0)
        << " }" << (i + 1 < match.cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"kernel_agreement\": [\n";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelAgreement& c = kernels[i];
    out << "    { \"kernel\": \"" << c.kernel << "\", \"pairs\": "
        << c.pairs << ", \"matched\": " << c.matched
        << ", \"agrees_with_std\": " << (c.agrees ? 1 : 0) << " }"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"diff_tool\": \"tools/bench_diff.py compares two of these "
         "files: numeric leaves as before -> after (delta%), --threshold N "
         "exits 1 past N percent (0 here: the bench is deterministic)\"\n"
      << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const AttributedGraph g = MakeGraph();
  const WorkloadResult match = RunMatchWorkload(g);
  const std::vector<KernelAgreement> kernels = RunKernelWorkload();

  Table table("Aux-graph matcher: byte-identity across kernels (rows must "
              "equal the aux-off reference)",
              {"kernel", "aux", "units", "rows", "identical"});
  table.AddRow({"(reference)", "0", std::to_string(match.units),
                std::to_string(match.reference_rows), "-"});
  bool ok = true;
  for (const KernelCell& c : match.cells) {
    table.AddRow({c.kernel, "1", std::to_string(match.units),
                  std::to_string(c.rows), c.identical ? "yes" : "NO"});
    ok = ok && c.identical && c.rows == match.reference_rows;
  }
  table.Print();

  Table agreement("Intersection kernels vs std::set_intersection",
                  {"kernel", "pairs", "matched", "agrees"});
  for (const KernelAgreement& c : kernels) {
    agreement.AddRow({c.kernel, std::to_string(c.pairs),
                      std::to_string(c.matched), c.agrees ? "yes" : "NO"});
    ok = ok && c.agrees;
  }
  agreement.Print();

  const std::string dir = OutDir();
  if (!dir.empty()) WriteBenchJson(dir + "/BENCH_aux.json", match, kernels);
  if (!ok) {
    std::fprintf(stderr, "bench_aux: byte-identity violated\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ppsm::bench

int main() { return ppsm::bench::Run(); }
