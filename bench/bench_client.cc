// Reproduces paper Figures 20, 21 & 27: client-side processing time
// (Algorithm 3) — (a) vs |E(Q)| at k=3, (b) vs k at |E(Q)|=6 — for all four
// methods on every dataset. Expected shapes: client time is orders of
// magnitude below cloud time; EFF < RAN/FSIM (fewer candidates), BAS is
// slightly cheaper than EFF at the client only (its cloud already expanded
// R(Qo,Gk)).

#include <iostream>
#include <map>
#include <memory>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_client] scale=" << scale
            << " queries/config=" << queries << "\n\n";

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    const std::string stem = dataset.name.substr(0, dataset.name.find('*'));

    // (a) vs |E(Q)| at k = 3.
    {
      std::map<int, std::unique_ptr<PpsmSystem>> systems;
      for (const Method method : kAllMethods) {
        SystemConfig config;
        config.method = method;
        config.k = 3;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        systems[static_cast<int>(method)] =
            std::make_unique<PpsmSystem>(std::move(*system));
      }
      Table table("Figure 20/21/27a: client processing time (ms) on " +
                      dataset.name + ", k=3",
                  {"|E(Q)|", "EFF", "RAN", "FSIM", "BAS"});
      for (const size_t qsize : kAllQuerySizes) {
        std::vector<std::string> row{std::to_string(qsize)};
        for (const Method method : kAllMethods) {
          auto agg =
              RunQueryBatch(*systems[static_cast<int>(method)], *graph,
                            qsize, queries, /*seed=*/qsize * 31);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          row.push_back(Table::Num(agg->client_ms, 4));
        }
        table.AddRow(row);
      }
      Emit(table, "fig20_client_time_vs_q_" + stem);
    }

    // (b) vs k at |E(Q)| = 6.
    {
      Table table("Figure 20/21/27b: client processing time (ms) on " +
                      dataset.name + ", |E(Q)|=6",
                  {"k", "EFF", "RAN", "FSIM", "BAS"});
      for (const uint32_t k : kAllKs) {
        std::vector<std::string> row{std::to_string(k)};
        for (const Method method : kAllMethods) {
          SystemConfig config;
          config.method = method;
          config.k = k;
          auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
          if (!system.ok()) {
            std::cerr << system.status() << "\n";
            return;
          }
          auto agg = RunQueryBatch(*system, *graph, 6, queries,
                                   /*seed=*/k * 131);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          row.push_back(Table::Num(agg->client_ms, 4));
        }
        table.AddRow(row);
      }
      Emit(table, "fig20_client_time_vs_k_" + stem);
    }
  }
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
