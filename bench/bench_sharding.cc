// bench_sharding — the sharded cloud's exchange-volume study.
//
// The BSP exchange ships *un-expanded* R(S,Go) rows, so its byte volume
// must be independent of the privacy parameter k (DESIGN.md §13). This
// bench makes that claim measurable: a synthetic outsourced graph whose Go
// is IDENTICAL for every k (only the AVT/Gk ids grow with k) is served at
// k ∈ {2, 8} and shard counts {1, 2, 4}, asserting along the way that every
// sharded payload is byte-identical to the unsharded CloudServer's.
//
// Unlike the timing benches this one is fully deterministic — a counting
// benchmark, no timers: the fixture is formula-built, seeds are fixed, and
// every emitted leaf (bytes, rows, equality flags) reproduces exactly on
// any host. That is what lets CI gate it with
//
//   tools/bench_diff.py --threshold 0
//       bench_results/BENCH_sharding.json <out>/BENCH_sharding.json
//
// PPSM_BENCH_SCALE / PPSM_BENCH_QUERIES are deliberately ignored; only
// PPSM_BENCH_OUT (output directory) is honored.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cloud/cloud_server.h"
#include "cloud/cluster.h"
#include "cloud/messages.h"
#include "graph/attributed_graph.h"
#include "graph/query_extractor.h"
#include "kauto/avt.h"
#include "kauto/outsourced_graph.h"
#include "util/random.h"
#include "util/table.h"

namespace ppsm::bench {
namespace {

constexpr size_t kVertices = 360;
constexpr uint32_t kNumTypes = 4;
constexpr uint32_t kNumGroups = 24;  // 4 | 24, so type_of_group is g % 4.
constexpr size_t kNumQueries = 8;
constexpr uint64_t kQuerySeed = 17;
constexpr uint32_t kKs[] = {2, 8};
constexpr uint32_t kShardCounts[] = {1, 2, 4};

/// A B1-only outsourced upload (num_b1 == |V(Go)|, no halo) whose Go does
/// not depend on k: vertex r of Go is Gk vertex r*k (block 0 of AVT row r),
/// and the k-1 symmetric copies r*k+b exist only in the AVT. Types, labels
/// (group ids) and edges are formula-built, so the package — and therefore
/// the extracted query workload and the exchange byte counts — reproduce
/// exactly on every host.
Result<UploadPackage> MakePackage(uint32_t k) {
  GraphBuilder builder;
  builder.ReserveVertices(kVertices);
  for (VertexId v = 0; v < kVertices; ++v) {
    builder.AddVertex(static_cast<VertexTypeId>(v % kNumTypes),
                      {static_cast<LabelId>(v % kNumGroups)});
  }
  for (VertexId v = 0; v < kVertices; ++v) {
    // Ring plus two chord stencils: average degree 6, plenty of star
    // matches without blowing up the join.
    builder.TryAddEdge(v, (v + 1) % kVertices);
    builder.TryAddEdge(v, (v + 7) % kVertices);
    builder.TryAddEdge(v, (v + 13) % kVertices);
  }
  OutsourcedGraph go;
  PPSM_ASSIGN_OR_RETURN(go.graph, builder.Build());
  go.num_b1 = kVertices;
  go.k = k;
  go.to_gk.resize(kVertices);
  Avt avt(k, kVertices);
  for (uint32_t r = 0; r < kVertices; ++r) {
    go.to_gk[r] = static_cast<VertexId>(r * k);
    for (uint32_t b = 0; b < k; ++b) {
      avt.Place(r, b, static_cast<VertexId>(r * k + b));
    }
  }
  UploadPackage package;
  package.k = k;
  package.num_types = kNumTypes;
  package.type_of_group.resize(kNumGroups);
  for (uint32_t g = 0; g < kNumGroups; ++g) {
    package.type_of_group[g] = static_cast<VertexTypeId>(g % kNumTypes);
  }
  package.go = std::move(go);
  package.avt = std::move(avt);
  return package;
}

struct CellResult {
  uint32_t k = 0;
  uint32_t shards = 0;
  size_t result_rows = 0;
  size_t exchanged_bytes = 0;
  bool identical = true;  // Payloads byte-equal to the unsharded server's.
};

/// Writes the gate snapshot. The committed bench_results/BENCH_sharding.json
/// is this function's verbatim output, so CI can diff at --threshold 0.
void WriteBenchJson(const std::string& path,
                    const std::vector<CellResult>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_sharding: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"description\": \"Sharded-cloud exchange volume: un-expanded "
         "R(S,Go) probe rows shipped shard -> coordinator must not depend "
         "on the privacy parameter k, and every sharded response payload "
         "must be byte-identical to the unsharded CloudServer's. Fully "
         "deterministic counting benchmark (no timers).\",\n"
      << "  \"fixture\": \"synthetic B1-only Go, " << kVertices
      << " vertices, " << kNumTypes << " types, " << kNumGroups
      << " label groups, ring+chord(7,13) edges; identical Go for every k "
         "(Gk vertex of Go-local r is r*k); "
      << kNumQueries << " extracted queries of 3-6 edges, seed "
      << kQuerySeed << "\",\n"
      << "  \"command\": \"bench_sharding (ignores PPSM_BENCH_SCALE / "
         "PPSM_BENCH_QUERIES; honors PPSM_BENCH_OUT)\",\n"
      << "  \"units\": \"bytes, rows, flags (1 = byte-identical / "
         "k-invariant, 0 = violated)\",\n"
      << "  \"host_note\": \"Every leaf is deterministic: the fixture is "
         "formula-built and the pipeline is integer counting, so CI gates "
         "this file with tools/bench_diff.py --threshold 0 against a fresh "
         "run.\",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    { \"k\": " << c.k << ", \"shards\": " << c.shards
        << ", \"queries\": " << kNumQueries << ", \"result_rows\": "
        << c.result_rows << ", \"exchanged_bytes\": " << c.exchanged_bytes
        << ", \"identical_payloads\": " << (c.identical ? 1 : 0) << " }"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"exchange_k_invariance\": [\n";
  bool first = true;
  for (const uint32_t shards : kShardCounts) {
    size_t k2 = 0, k8 = 0;
    for (const CellResult& c : cells) {
      if (c.shards != shards) continue;
      (c.k == 2 ? k2 : k8) = c.exchanged_bytes;
    }
    out << (first ? "" : ",\n") << "    { \"shards\": " << shards
        << ", \"k2_bytes\": " << k2 << ", \"k8_bytes\": " << k8
        << ", \"bytes_equal\": " << (k2 == k8 ? 1 : 0) << " }";
    first = false;
  }
  out << "\n  ],\n"
      << "  \"diff_tool\": \"tools/bench_diff.py compares two of these "
         "files: numeric leaves as before -> after (delta%), --threshold N "
         "exits 1 past N percent (0 here: the bench is deterministic)\"\n"
      << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  std::vector<CellResult> cells;
  Table table("Sharded cloud: exchange volume and byte-identity (Go fixed, "
              "k varies — exchanged bytes must not)",
              {"k", "shards", "queries", "result_rows", "exchanged_bytes",
               "identical"});
  bool all_identical = true;

  for (const uint32_t k : kKs) {
    auto package = MakePackage(k);
    if (!package.ok()) {
      std::fprintf(stderr, "fixture: %s\n",
                   package.status().ToString().c_str());
      return 1;
    }
    const std::vector<uint8_t> upload = package->Serialize();
    auto server = CloudServer::Host(upload);
    if (!server.ok()) {
      std::fprintf(stderr, "host: %s\n", server.status().ToString().c_str());
      return 1;
    }

    // Re-seeded per k: Go is identical across k, so the workload is too.
    Rng rng(kQuerySeed);
    std::vector<std::vector<uint8_t>> requests;
    for (size_t i = 0; i < kNumQueries; ++i) {
      auto extracted = ExtractQuery(package->go->graph, 3 + i % 4, rng);
      if (!extracted.ok()) {
        std::fprintf(stderr, "extract: %s\n",
                     extracted.status().ToString().c_str());
        return 1;
      }
      requests.push_back(SerializeQueryRequest(extracted->query));
    }

    for (const uint32_t num_shards : kShardCounts) {
      ClusterConfig config;
      config.num_shards = num_shards;
      auto cluster = CloudCluster::Host(upload, config);
      if (!cluster.ok()) {
        std::fprintf(stderr, "cluster: %s\n",
                     cluster.status().ToString().c_str());
        return 1;
      }
      CellResult cell;
      cell.k = k;
      cell.shards = num_shards;
      for (const auto& request : requests) {
        auto want = server->Serve(request);
        auto got = cluster->Serve(request);
        if (!want.ok() || !got.ok()) {
          std::fprintf(stderr, "serve failed (k=%u shards=%u)\n", k,
                       num_shards);
          return 1;
        }
        cell.result_rows += got->stats.result_rows;
        if (got->response_payload != want->response_payload) {
          cell.identical = false;
        }
      }
      cell.exchanged_bytes = cluster->ExchangedBytes();
      all_identical = all_identical && cell.identical;
      table.AddRowValues(cell.k, cell.shards, kNumQueries, cell.result_rows,
                         cell.exchanged_bytes, cell.identical ? 1 : 0);
      cells.push_back(cell);
    }
  }

  Emit(table, "sharding");
  for (const uint32_t shards : kShardCounts) {
    size_t k2 = 0, k8 = 0;
    for (const CellResult& c : cells) {
      if (c.shards != shards) continue;
      (c.k == 2 ? k2 : k8) = c.exchanged_bytes;
    }
    std::printf("shards=%u: exchanged bytes k=2: %zu, k=8: %zu (%s)\n",
                shards, k2, k8, k2 == k8 ? "k-invariant" : "VARIES WITH k");
    if (k2 != k8) all_identical = false;
  }

  const std::string dir = OutDir();
  if (!dir.empty()) WriteBenchJson(dir + "/BENCH_sharding.json", cells);
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: sharded payloads diverged or exchange volume "
                 "depends on k\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ppsm::bench

int main() { return ppsm::bench::Run(); }
