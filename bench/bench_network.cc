// Reproduces paper Figure 33: network transmission time for the query
// results (simulated link, see cloud/channel.h), k = 2..6, |E(Q)| in
// {6, 12}, all four methods. Expected shape: EFF transmits only Rin and
// beats BAS (full R(Qo,Gk)) by roughly k; RAN/FSIM sit between EFF and BAS
// because their looser grouping inflates |Rin|.

#include <iostream>

#include "bench/bench_common.h"
#include "graph/query_extractor.h"
#include "net/net_client.h"
#include "net/ppsm_server.h"
#include "net/serving_system.h"
#include "query/query_api.h"
#include "util/random.h"
#include "util/timer.h"

namespace ppsm::bench {
namespace {

/// Live mode: the same queries through a real loopback socket (in-process
/// PpsmServer + NetClient) so the modeled link of Figure 33 can be compared
/// against measured wire traffic. The simulated columns come from the
/// QueryResponse the server computed (they ride inside the reply payload);
/// the live columns are what actually crossed the socket. Skip with
/// PPSM_BENCH_LIVE=0.
void RunLive(double scale, size_t queries) {
  const char* env = std::getenv("PPSM_BENCH_LIVE");
  if (env != nullptr && std::string(env) == "0") return;

  const BenchDataset dataset = StandardDatasets(scale).front();
  auto graph = GenerateDataset(dataset.config);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return;
  }
  SystemConfig config;
  config.method = Method::kEff;
  config.k = 4;
  auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return;
  }
  ServingSystem serving(std::move(*system));
  auto server = PpsmServer::Start(&serving);
  if (!server.ok()) {
    std::cerr << server.status() << "\n";
    return;
  }
  auto client = NetClient::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::cerr << client.status() << "\n";
    return;
  }

  double sim_network_ms = 0.0, live_rtt_ms = 0.0, compute_ms = 0.0;
  double sim_request_bytes = 0.0, sim_response_bytes = 0.0;
  double wire_request_bytes = 0.0, wire_response_bytes = 0.0;
  size_t completed = 0;
  Rng rng(/*seed=*/17);
  WallTimer wall;
  for (size_t i = 0; i < queries; ++i) {
    auto extracted = ExtractQuery(*graph, /*query_edges=*/6, rng);
    if (!extracted.ok()) continue;
    QueryRequest request;
    request.pattern = extracted->query;
    WallTimer rtt;
    auto reply = client->Execute(request);
    if (!reply.ok()) continue;  // Row-cap refusals, as in the batch run.
    const double rtt_ms = rtt.ElapsedMillis();
    ++completed;
    live_rtt_ms += rtt_ms;
    // Compute share of the round trip (cloud evaluation + Algorithm 3
    // post-processing both run server-side); the rest is real wire cost.
    compute_ms += reply->cloud.total_ms + reply->client_ms;
    sim_network_ms += reply->network_ms;
    sim_request_bytes += static_cast<double>(reply->request_bytes);
    sim_response_bytes += static_cast<double>(reply->response_bytes);
    // What actually crossed the socket: the framed codec payloads.
    wire_request_bytes += static_cast<double>(
        kFrameHeaderBytes + SerializeQueryRequest(request).size());
    wire_response_bytes += static_cast<double>(
        kFrameHeaderBytes + SerializeQueryResponse(*reply).size());
  }
  const double wall_ms = wall.ElapsedMillis();
  (*server)->Stop();
  if (completed == 0) {
    std::cerr << "[bench_network] live mode: no query completed\n";
    return;
  }
  const auto denom = static_cast<double>(completed);

  Table table("live loopback vs simulated link (" + dataset.name +
                  ", eff, k=4, |E(Q)|=6, " + std::to_string(completed) +
                  " queries)",
              {"metric", "simulated", "live wire"});
  table.AddRowValues("network ms / query", Table::Num(sim_network_ms / denom, 3),
                     Table::Num((live_rtt_ms - compute_ms) / denom, 3));
  table.AddRowValues("request bytes / query",
                     Table::Num(sim_request_bytes / denom, 0),
                     Table::Num(wire_request_bytes / denom, 0));
  table.AddRowValues("response bytes / query",
                     Table::Num(sim_response_bytes / denom, 0),
                     Table::Num(wire_response_bytes / denom, 0));
  table.AddRowValues("round-trip ms / query", "-",
                     Table::Num(live_rtt_ms / denom, 3));
  table.AddRowValues("throughput q/s", "-",
                     Table::Num(1000.0 * denom / std::max(wall_ms, 1e-9), 1));
  Emit(table, "fig33_live_loopback");
}

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_network] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const size_t qsizes[] = {6, 12};

  Table time_table("Figure 33: network transmission time (ms)",
                   {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                    "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                    "k=6 q6", "k=6 q12"});
  Table bytes_table("Figure 33 (companion): response payload (bytes)",
                    {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                     "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                     "k=6 q6", "k=6 q12"});

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    for (const Method method : kAllMethods) {
      std::vector<std::string> time_row{dataset.name, MethodName(method)};
      std::vector<std::string> bytes_row{dataset.name, MethodName(method)};
      for (const uint32_t k : kAllKs) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        for (const size_t qsize : qsizes) {
          auto agg = RunQueryBatch(*system, *graph, qsize, queries,
                                   /*seed=*/qsize * 7 + k);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          time_row.push_back(Table::Num(agg->network_ms, 3));
          bytes_row.push_back(Table::Num(agg->response_bytes, 0));
        }
      }
      time_table.AddRow(time_row);
      bytes_table.AddRow(bytes_row);
    }
  }
  Emit(time_table, "fig33_network_time");
  Emit(bytes_table, "fig33_response_bytes");
  RunLive(scale, queries);
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
