// Reproduces paper Figure 33: network transmission time for the query
// results (simulated link, see cloud/channel.h), k = 2..6, |E(Q)| in
// {6, 12}, all four methods. Expected shape: EFF transmits only Rin and
// beats BAS (full R(Qo,Gk)) by roughly k; RAN/FSIM sit between EFF and BAS
// because their looser grouping inflates |Rin|.

#include <iostream>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  const size_t queries = QueriesFromEnv(8);
  std::cout << "[bench_network] scale=" << scale
            << " queries/config=" << queries << "\n\n";
  const size_t qsizes[] = {6, 12};

  Table time_table("Figure 33: network transmission time (ms)",
                   {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                    "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                    "k=6 q6", "k=6 q12"});
  Table bytes_table("Figure 33 (companion): response payload (bytes)",
                    {"dataset", "method", "k=2 q6", "k=2 q12", "k=3 q6",
                     "k=3 q12", "k=4 q6", "k=4 q12", "k=5 q6", "k=5 q12",
                     "k=6 q6", "k=6 q12"});

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    for (const Method method : kAllMethods) {
      std::vector<std::string> time_row{dataset.name, MethodName(method)};
      std::vector<std::string> bytes_row{dataset.name, MethodName(method)};
      for (const uint32_t k : kAllKs) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        for (const size_t qsize : qsizes) {
          auto agg = RunQueryBatch(*system, *graph, qsize, queries,
                                   /*seed=*/qsize * 7 + k);
          if (!agg.ok()) {
            std::cerr << agg.status() << "\n";
            return;
          }
          time_row.push_back(Table::Num(agg->network_ms, 3));
          bytes_row.push_back(Table::Num(agg->response_bytes, 0));
        }
      }
      time_table.AddRow(time_row);
      bytes_table.AddRow(bytes_row);
    }
  }
  Emit(time_table, "fig33_network_time");
  Emit(bytes_table, "fig33_response_bytes");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
