// Reproduces paper Figure 13: index size (a) and index construction time
// (b) per dataset for k = 2..6 (EFF). Expected shape: both DECREASE as k
// grows, because the index covers only B1's ceil(|V(Gk)|/k) centers.

#include <iostream>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  std::cout << "[bench_index] scale=" << scale << "\n\n";

  Table size_table("Figure 13a: index size (KB) (EFF)",
                   {"dataset", "k=2", "k=3", "k=4", "k=5", "k=6"});
  Table time_table("Figure 13b: index construction time (ms) (EFF)",
                   {"dataset", "k=2", "k=3", "k=4", "k=5", "k=6"});
  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    std::vector<std::string> size_row{dataset.name};
    std::vector<std::string> time_row{dataset.name};
    for (const uint32_t k : kAllKs) {
      SystemConfig config;
      config.method = Method::kEff;
      config.k = k;
      auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
      if (!system.ok()) {
        std::cerr << system.status() << "\n";
        return;
      }
      size_row.push_back(Table::Num(
          static_cast<double>(system->cloud().IndexMemoryBytes()) / 1024.0,
          1));
      time_row.push_back(Table::Num(system->cloud().IndexBuildMillis(), 2));
    }
    size_table.AddRow(size_row);
    time_table.AddRow(time_row);
  }
  Emit(size_table, "fig13a_index_size");
  Emit(time_table, "fig13b_index_time");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
