// Reproduces paper Figures 10 & 23 (time cost of generating Gk, EFF vs RAN
// vs FSIM, k = 2..6) and Figures 11 & 24 (number of noise edges in Gk).
// Expected shapes: all three strategies cost about the same (the strategy
// only changes the LCT, not the transform), and noise edges grow roughly
// linearly with k.

#include <iostream>

#include "bench/bench_common.h"
#include "cloud/data_owner.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  std::cout << "[bench_gk_generation] scale=" << scale << "\n\n";
  const Method methods[] = {Method::kEff, Method::kRan, Method::kFsim};

  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << "dataset " << dataset.name << ": "
                << graph.status() << "\n";
      return;
    }
    Table time_table(
        "Figure 10/23: time generating Gk (s) on " + dataset.name +
            " (|V|=" + std::to_string(graph->NumVertices()) +
            ", |E|=" + std::to_string(graph->NumEdges()) + ")",
        {"k", "EFF", "RAN", "FSIM"});
    Table noise_table("Figure 11/24: noise edges in Gk on " + dataset.name,
                      {"k", "EFF", "RAN", "FSIM"});
    for (const uint32_t k : kAllKs) {
      std::vector<std::string> time_row{std::to_string(k)};
      std::vector<std::string> noise_row{std::to_string(k)};
      for (const Method method : methods) {
        SystemConfig config;
        config.method = method;
        config.k = k;
        auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
        if (!system.ok()) {
          std::cerr << system.status() << "\n";
          return;
        }
        const SetupStats& stats = system->setup_stats();
        // "Generating Gk" = label combination + anonymization + transform.
        const double seconds =
            (stats.lct_ms + stats.anonymize_ms + stats.kauto_ms) / 1e3;
        time_row.push_back(Table::Num(seconds, 3));
        noise_row.push_back(std::to_string(stats.noise_edges));
      }
      time_table.AddRow(time_row);
      noise_table.AddRow(noise_row);
    }
    const std::string stem = dataset.name.substr(0, dataset.name.find('*'));
    Emit(time_table, "fig10_gk_time_" + stem);
    Emit(noise_table, "fig11_noise_edges_" + stem);
  }

  // Offline-pipeline scaling: the same EFF setup at increasing
  // setup_threads on the largest preset. Byte-identical artifacts at every
  // thread count (DESIGN.md §11; enforced by setup_determinism_test), so
  // the only thing that may change down a column is the wall time.
  const std::vector<BenchDataset> datasets = StandardDatasets(scale);
  const BenchDataset& largest = datasets.back();
  auto graph = GenerateDataset(largest.config);
  if (!graph.ok()) {
    std::cerr << "dataset " << largest.name << ": " << graph.status() << "\n";
    return;
  }
  Table scaling_table(
      "Setup scaling: EFF end-to-end setup (s) on " + largest.name +
          " (|V|=" + std::to_string(graph->NumVertices()) +
          ", |E|=" + std::to_string(graph->NumEdges()) + ") vs setup_threads",
      {"threads", "k=2", "k=4", "k=6"});
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const uint32_t k : {2u, 4u, 6u}) {
      SystemConfig config;
      config.method = Method::kEff;
      config.k = k;
      config.setup_threads = threads;
      auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
      if (!system.ok()) {
        std::cerr << system.status() << "\n";
        return;
      }
      row.push_back(Table::Num(system->setup_stats().total_ms / 1e3, 3));
    }
    scaling_table.AddRow(row);
  }
  Emit(scaling_table, "setup_scaling");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
