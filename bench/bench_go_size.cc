// Reproduces paper Figure 12: |E(Go)| and |E(Gk)| for k = 2..6 using EFF.
// Expected shape: |E(Go)| well below |E(Gk)| (roughly a 1/k slice plus the
// boundary), approaching |E(G)| for small k.

#include <iostream>

#include "bench/bench_common.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  std::cout << "[bench_go_size] scale=" << scale << "\n\n";

  Table table("Figure 12: number of edges in Go and Gk (EFF)",
              {"dataset", "|E(G)|", "metric", "k=2", "k=3", "k=4", "k=5",
               "k=6"});
  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    std::vector<std::string> go_row{dataset.name,
                                    std::to_string(graph->NumEdges()),
                                    "|E(Go)|"};
    std::vector<std::string> gk_row{dataset.name,
                                    std::to_string(graph->NumEdges()),
                                    "|E(Gk)|"};
    for (const uint32_t k : kAllKs) {
      SystemConfig config;
      config.method = Method::kEff;
      config.k = k;
      auto system = PpsmSystem::Setup(*graph, graph->schema(), config);
      if (!system.ok()) {
        std::cerr << system.status() << "\n";
        return;
      }
      go_row.push_back(std::to_string(system->setup_stats().go_edges));
      gk_row.push_back(std::to_string(system->setup_stats().gk_edges));
    }
    table.AddRow(go_row);
    table.AddRow(gk_row);
  }
  Emit(table, "fig12_go_gk_edges");
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
