// Privacy-strength comparison bench (the §7 related-work argument, made
// quantitative): k-degree anonymity [Liu & Terzi, ref 13] vs k-automorphism
// [Zou et al., ref 26] on noise cost and on resistance to two simulated
// structural attacks:
//   * degree attack      — adversary knows the target's exact degree;
//   * neighborhood attack — adversary knows the target's degree and the
//     multiset of its neighbors' degrees (a weak form of the 1-neighbor
//     graph attack of ref [24]).
// A method "withstands" an attack when every signature class has >= k
// members (candidate set never smaller than k).

#include <iostream>

#include "anonymize/degree_anonymity.h"
#include "bench/bench_common.h"
#include "kauto/kautomorphism.h"

namespace ppsm::bench {
namespace {

void Run() {
  const double scale = ScaleFromEnv();
  std::cout << "[bench_privacy] scale=" << scale << "\n\n";

  Table table("Privacy comparison: k-degree anonymity vs k-automorphism",
              {"dataset", "k", "method", "noise edges", "degree-attack k",
               "nbrhd-attack k", "withstands nbrhd?"});
  for (const BenchDataset& dataset : StandardDatasets(scale)) {
    auto graph = GenerateDataset(dataset.config);
    if (!graph.ok()) {
      std::cerr << graph.status() << "\n";
      return;
    }
    for (const uint32_t k : {2u, 4u, 6u}) {
      DegreeAnonymityOptions degree_options;
      degree_options.k = k;
      auto degree = AnonymizeDegrees(*graph, degree_options);
      if (!degree.ok()) {
        std::cerr << degree.status() << "\n";
        return;
      }
      const size_t degree_nbrhd = NeighborhoodAnonymityLevel(degree->graph);
      table.AddRowValues(dataset.name, k, "k-degree",
                         degree->noise_edges,
                         DegreeAnonymityLevel(degree->graph), degree_nbrhd,
                         degree_nbrhd >= k ? "yes" : "NO");

      KAutomorphismOptions kauto_options;
      kauto_options.k = k;
      auto kauto = BuildKAutomorphicGraph(*graph, kauto_options);
      if (!kauto.ok()) {
        std::cerr << kauto.status() << "\n";
        return;
      }
      const size_t kauto_nbrhd = NeighborhoodAnonymityLevel(kauto->gk);
      table.AddRowValues(dataset.name, k, "k-automorphism",
                         kauto->NumNoiseEdges(),
                         DegreeAnonymityLevel(kauto->gk), kauto_nbrhd,
                         kauto_nbrhd >= k ? "yes" : "NO");
    }
  }
  Emit(table, "privacy_comparison");
  std::cout << "Expected shape: k-degree anonymity is far cheaper but its "
               "neighborhood-attack column collapses below k; "
               "k-automorphism holds >= k under both attacks (this is why "
               "the paper builds on it).\n";
}

}  // namespace
}  // namespace ppsm::bench

int main() {
  ppsm::bench::Run();
  return 0;
}
